// Robustness tests for the persistent artifact cache: truncation, corruption,
// stale version stamps and concurrent writers must all degrade to a clean
// rebuild — never a crash, never reuse of bad bytes.
#include "hetpar/pipeline/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar::pipeline {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

class ArtifactCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("hetpar-artifact-cache-test-" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(ArtifactCacheTest, RoundTrip) {
  ArtifactCache cache(dir_);
  const std::string payload = "the artifact bytes\0with a nul"s;
  EXPECT_TRUE(cache.store("k1", payload));
  std::string loaded;
  EXPECT_TRUE(cache.load("k1", loaded));
  EXPECT_EQ(loaded, payload);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST_F(ArtifactCacheTest, AbsentKeyIsMiss) {
  ArtifactCache cache(dir_);
  std::string loaded;
  EXPECT_FALSE(cache.load("nope", loaded));
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().rejectedCorrupt, 0);
}

TEST_F(ArtifactCacheTest, TruncatedEntryRejectedThenRebuilt) {
  ArtifactCache cache(dir_);
  ASSERT_TRUE(cache.store("k", "payload-payload-payload"));
  const std::string full = slurp(cache.pathFor("k"));

  // Every possible truncation point must be rejected cleanly.
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    spew(cache.pathFor("k"), full.substr(0, keep));
    std::string loaded;
    EXPECT_FALSE(cache.load("k", loaded)) << "accepted a " << keep << "-byte prefix";
  }
  EXPECT_EQ(cache.stats().rejectedCorrupt, static_cast<long long>(full.size()));

  // The slot is rebuildable: a fresh store over the damage round-trips.
  EXPECT_TRUE(cache.store("k", "payload-payload-payload"));
  std::string loaded;
  EXPECT_TRUE(cache.load("k", loaded));
  EXPECT_EQ(loaded, "payload-payload-payload");
}

TEST_F(ArtifactCacheTest, EveryFlippedByteRejected) {
  ArtifactCache cache(dir_);
  ASSERT_TRUE(cache.store("k", "sensitive artifact payload"));
  const std::string full = slurp(cache.pathFor("k"));

  for (std::size_t at = 0; at < full.size(); ++at) {
    std::string damaged = full;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x5a);
    spew(cache.pathFor("k"), damaged);
    std::string loaded;
    EXPECT_FALSE(cache.load("k", loaded)) << "accepted a flip at byte " << at;
  }
  const ArtifactCacheStats s = cache.stats();
  // A flipped byte lands in either the version stamp or some checked field.
  EXPECT_EQ(s.rejectedCorrupt + s.rejectedVersion, static_cast<long long>(full.size()));
  EXPECT_EQ(s.hits, 0);
}

TEST_F(ArtifactCacheTest, StaleVersionStampRejectedAsVersion) {
  ArtifactCache cache(dir_);
  ASSERT_TRUE(cache.store("k", "payload"));
  std::string full = slurp(cache.pathFor("k"));
  // Layout: 4-byte magic, then the little-endian format version.
  ASSERT_GE(full.size(), 8u);
  full[4] = static_cast<char>(ArtifactCache::kFormatVersion + 1);
  spew(cache.pathFor("k"), full);

  std::string loaded;
  EXPECT_FALSE(cache.load("k", loaded));
  EXPECT_EQ(cache.stats().rejectedVersion, 1);
  EXPECT_EQ(cache.stats().rejectedCorrupt, 0);
}

TEST_F(ArtifactCacheTest, WrongKeyEchoRejected) {
  ArtifactCache cache(dir_);
  ASSERT_TRUE(cache.store("k1", "payload"));
  // An entry renamed to another key must not be served under it.
  fs::copy_file(cache.pathFor("k1"), cache.pathFor("k2"));
  std::string loaded;
  EXPECT_FALSE(cache.load("k2", loaded));
  EXPECT_EQ(cache.stats().rejectedCorrupt, 1);
}

TEST_F(ArtifactCacheTest, ConcurrentWritersAndReadersStayConsistent) {
  ArtifactCache cache(dir_);
  const std::string payload(4096, 'x');
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;

  std::vector<std::thread> threads;
  std::atomic<int> badReads{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        if (t % 2 == 0) {
          cache.store("shared", payload);
        } else {
          std::string loaded;
          // A load may miss before the first store lands, but a served
          // payload must never be partial or mixed.
          if (cache.load("shared", loaded) && loaded != payload) ++badReads;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(badReads.load(), 0);

  std::string loaded;
  EXPECT_TRUE(cache.load("shared", loaded));
  EXPECT_EQ(loaded, payload);
}

TEST_F(ArtifactCacheTest, OutcomeSerializationRoundTripsByteExactly) {
  const htg::FrontendBundle bundle = htg::buildFromSource(R"(
    int main() {
      int a[64]; int b[64]; int s = 0;
      for (int i = 0; i < 64; i = i + 1) { a[i] = i; }
      for (int j = 0; j < 64; j = j + 1) { b[j] = a[j] * 2; }
      for (int k = 0; k < 64; k = k + 1) { s = s + b[k]; }
      return s;
    }
  )");
  // TimingModel keeps a pointer to the platform: it must outlive the solve.
  const platform::Platform pf = platform::platformA();
  const cost::TimingModel timing(pf);
  parallel::ParallelizerOptions po;
  po.minRegionTcoMultiple = 0.0;  // force ILPs even on this tiny program
  parallel::Parallelizer tool(bundle.graph, timing, po);
  const parallel::ParallelizeOutcome outcome = tool.run();

  const std::string payload = serializeOutcome(outcome);
  parallel::ParallelizeOutcome decoded;
  ASSERT_TRUE(deserializeOutcome(payload, decoded));
  EXPECT_TRUE(outcomeFitsGraph(decoded, bundle.graph));
  // Byte-exact: re-serializing the decoded outcome reproduces the payload.
  EXPECT_EQ(serializeOutcome(decoded), payload);

  // And any truncated payload is rejected, not misdecoded.
  for (std::size_t keep = 0; keep < payload.size(); keep += 7) {
    parallel::ParallelizeOutcome junk;
    EXPECT_FALSE(deserializeOutcome(payload.substr(0, keep), junk));
  }
}

}  // namespace
}  // namespace hetpar::pipeline
