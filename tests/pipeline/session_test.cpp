// Session tests: lazy pass execution, timing records, artifact keys, and
// the cache hit path reproducing the cold outcome exactly.
#include "hetpar/pipeline/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "hetpar/htg/builder.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/verify/metamorphic.hpp"

namespace hetpar::pipeline {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSource = R"(
  int main() {
    int a[128]; int b[128]; int s = 0;
    for (int i = 0; i < 128; i = i + 1) { a[i] = i * 3; }
    for (int j = 0; j < 128; j = j + 1) { b[j] = a[j] + 7; }
    for (int k = 0; k < 128; k = k + 1) { s = s + b[k]; }
    return s;
  }
)";

SessionInputs inputs() {
  SessionInputs in;
  in.name = "session_test";
  in.source = kSource;
  in.platform = platform::platformA();
  // The test program is deliberately tiny; drop the granularity threshold so
  // the parallelize pass actually solves ILPs instead of staying sequential.
  in.parallelizer.minRegionTcoMultiple = 0.0;
  return in;
}

TEST(Session, FrontendMatchesBuildFromSource) {
  Session session(inputs());
  const htg::FrontendBundle& bundle = session.frontend();
  const htg::FrontendBundle direct = htg::buildFromSource(kSource);
  EXPECT_EQ(bundle.graph.size(), direct.graph.size());
  EXPECT_EQ(bundle.graph.hierarchicalCount(), direct.graph.hierarchicalCount());
  EXPECT_EQ(bundle.profile.totalOps, direct.profile.totalOps);
  EXPECT_EQ(bundle.profile.exitValue, direct.profile.exitValue);
}

TEST(Session, PassesAreLazyAndRunOnce) {
  Session session(inputs());
  EXPECT_TRUE(session.passes().empty());
  session.frontend();
  const std::size_t afterFrontend = session.passes().size();
  EXPECT_EQ(afterFrontend, 4u);  // parse, sema, sections, htg
  session.frontend();            // idempotent: no new records
  EXPECT_EQ(session.passes().size(), afterFrontend);

  session.parallelize();
  session.parallelize();
  EXPECT_EQ(session.passes().size(), afterFrontend + 1);
  EXPECT_EQ(session.passes().back().name, "parallelize");
  EXPECT_GT(session.passes().back().artifactBytes, 0);
}

TEST(Session, OutcomeMatchesDirectParallelizerRun) {
  Session session(inputs());
  const parallel::ParallelizeOutcome& viaSession = session.parallelize();

  const htg::FrontendBundle bundle = htg::buildFromSource(kSource);
  // TimingModel keeps a pointer to the platform: it must outlive the solve.
  const platform::Platform pf = platform::platformA();
  const cost::TimingModel timing(pf);
  parallel::ParallelizerOptions po;
  po.minRegionTcoMultiple = 0.0;
  parallel::Parallelizer tool(bundle.graph, timing, po);
  const parallel::ParallelizeOutcome direct = tool.run();

  EXPECT_TRUE(verify::diffSolutionTables(viaSession.table, direct.table).empty());
}

TEST(Session, OutcomeKeyIsStableAndDiscriminating) {
  const std::string base = Session(inputs()).outcomeKey();
  EXPECT_EQ(base.size(), 32u);
  EXPECT_EQ(Session(inputs()).outcomeKey(), base);

  SessionInputs other = inputs();
  other.source += " ";
  EXPECT_NE(Session(std::move(other)).outcomeKey(), base);

  other = inputs();
  other.platform = platform::platformB();
  EXPECT_NE(Session(std::move(other)).outcomeKey(), base);

  other = inputs();
  other.depMode = ir::DependenceMode::Affine;
  EXPECT_NE(Session(std::move(other)).outcomeKey(), base);

  other = inputs();
  other.parallelizer.maxTasksPerRegion = 3;
  EXPECT_NE(Session(std::move(other)).outcomeKey(), base);

  // jobs and cache wiring are outcome-invariant: same artifact, same key.
  other = inputs();
  other.parallelizer.jobs = 8;
  other.parallelizer.enableRegionCache = false;
  EXPECT_EQ(Session(std::move(other)).outcomeKey(), base);
}

TEST(Session, CacheHitReproducesColdOutcome) {
  const std::string dir =
      (fs::temp_directory_path() / "hetpar-session-cache-test").string();
  fs::remove_all(dir);
  auto cache = std::make_shared<ArtifactCache>(dir);

  SessionInputs cold = inputs();
  cold.artifactCache = cache;
  Session coldSession(std::move(cold));
  const parallel::ParallelizeOutcome& coldOutcome = coldSession.parallelize();
  EXPECT_FALSE(coldSession.parallelizeWasCached());
  EXPECT_GT(coldOutcome.stats.numIlps, 0);

  SessionInputs warm = inputs();
  warm.artifactCache = cache;
  Session warmSession(std::move(warm));
  const parallel::ParallelizeOutcome& warmOutcome = warmSession.parallelize();
  EXPECT_TRUE(warmSession.parallelizeWasCached());
  EXPECT_TRUE(verify::diffSolutionTables(coldOutcome.table, warmOutcome.table).empty());
  // A hit solved nothing and says so.
  EXPECT_EQ(warmOutcome.stats.numIlps, 0);
  const PassRecord& rec = warmSession.passes().back();
  EXPECT_EQ(rec.name, "parallelize");
  EXPECT_EQ(rec.cacheHits, 1);
  EXPECT_EQ(rec.cacheMisses, 0);

  // Downstream passes agree between cold and warm sessions.
  const platform::ClassId mainClass = platform::platformA().slowestClass();
  const Session::SimNumbers coldSim = coldSession.simulate(mainClass);
  const Session::SimNumbers warmSim = warmSession.simulate(mainClass);
  EXPECT_EQ(coldSim.sequentialSeconds, warmSim.sequentialSeconds);
  EXPECT_EQ(coldSim.parallelSeconds, warmSim.parallelSeconds);
  EXPECT_EQ(coldSim.taskCount, warmSim.taskCount);
  EXPECT_EQ(coldSession.emitParspec(mainClass), warmSession.emitParspec(mainClass));
  EXPECT_EQ(coldSession.emitAnnotated(mainClass), warmSession.emitAnnotated(mainClass));

  fs::remove_all(dir);
}

TEST(Session, CorruptCacheEntryForcesCleanRebuild) {
  const std::string dir =
      (fs::temp_directory_path() / "hetpar-session-corrupt-test").string();
  fs::remove_all(dir);
  auto cache = std::make_shared<ArtifactCache>(dir);

  SessionInputs first = inputs();
  first.artifactCache = cache;
  Session firstSession(std::move(first));
  firstSession.parallelize();

  // Vandalize the stored entry; the next session must rebuild, not crash.
  {
    std::ofstream out(cache->pathFor(firstSession.outcomeKey()),
                      std::ios::binary | std::ios::trunc);
    out << "not an artifact";
  }
  SessionInputs second = inputs();
  second.artifactCache = cache;
  Session secondSession(std::move(second));
  const parallel::ParallelizeOutcome& rebuilt = secondSession.parallelize();
  EXPECT_FALSE(secondSession.parallelizeWasCached());
  EXPECT_GT(rebuilt.stats.numIlps, 0);
  EXPECT_GE(cache->stats().rejectedCorrupt, 1);

  // ...and the rebuild repaired the entry for the next consumer.
  SessionInputs third = inputs();
  third.artifactCache = cache;
  Session thirdSession(std::move(third));
  thirdSession.parallelize();
  EXPECT_TRUE(thirdSession.parallelizeWasCached());

  fs::remove_all(dir);
}

TEST(Session, EstimatesAndTimingRegistry) {
  TimingRegistry::global().reset();
  Session session(inputs());
  const platform::ClassId mainClass = platform::platformA().slowestClass();
  const Session::Estimates est = session.estimates(mainClass);
  EXPECT_GT(est.sequentialSeconds, 0.0);
  EXPECT_GT(est.parallelSeconds, 0.0);
  EXPECT_LE(est.parallelSeconds, est.sequentialSeconds);

  const auto totals = TimingRegistry::global().snapshot();
  ASSERT_TRUE(totals.count("parse"));
  ASSERT_TRUE(totals.count("parallelize"));
  EXPECT_EQ(totals.at("parse").runs, 1);
  const std::string table = formatPassTable(session.passes());
  EXPECT_NE(table.find("parallelize"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

}  // namespace
}  // namespace hetpar::pipeline
