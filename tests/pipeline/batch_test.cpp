// Batch driver tests: the merged report is deterministic across worker
// counts, per-job failures stay contained, and a shared artifact cache
// serves the whole fleet.
#include "hetpar/pipeline/batch.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "hetpar/platform/presets.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::pipeline {
namespace {

namespace fs = std::filesystem;

std::string program(int extent, int factor) {
  return strings::format(R"(
    int main() {
      int a[%d]; int b[%d]; int s = 0;
      for (int i = 0; i < %d; i = i + 1) { a[i] = i * %d; }
      for (int j = 0; j < %d; j = j + 1) { b[j] = a[j] + %d; }
      for (int k = 0; k < %d; k = k + 1) { s = s + b[k]; }
      return s;
    }
  )",
                         extent, extent, extent, factor, extent, factor, extent);
}

std::vector<BatchJob> threePrograms() {
  return {{"p64.c", program(64, 3)}, {"p96.c", program(96, 5)}, {"p128.c", program(128, 7)}};
}

BatchConfig config() {
  BatchConfig c;
  c.platform = platform::platformA();
  c.simulate = true;
  return c;
}

TEST(Batch, MergedReportIndependentOfWorkerCount) {
  BatchConfig serial = config();
  serial.workers = 1;
  const BatchReport one = runBatch(threePrograms(), serial);

  BatchConfig concurrent = config();
  concurrent.workers = 4;
  concurrent.regionCache = std::make_shared<parallel::IlpRegionCache>();
  const BatchReport many = runBatch(threePrograms(), concurrent);

  ASSERT_EQ(one.jobs.size(), many.jobs.size());
  for (std::size_t i = 0; i < one.jobs.size(); ++i) {
    EXPECT_EQ(one.jobs[i].name, many.jobs[i].name);
    EXPECT_EQ(one.jobs[i].ok, many.jobs[i].ok);
    // The determinism boundary: per-program report text is bit-identical.
    EXPECT_EQ(one.jobs[i].report, many.jobs[i].report) << one.jobs[i].name;
  }
  EXPECT_EQ(one.failures, 0);
  EXPECT_EQ(many.failures, 0);
}

TEST(Batch, OneBrokenProgramDoesNotSinkTheBatch) {
  std::vector<BatchJob> jobs = threePrograms();
  jobs.insert(jobs.begin() + 1, {"broken.c", "int main( { this is not C"});

  BatchConfig c = config();
  c.workers = 2;
  const BatchReport report = runBatch(jobs, c);
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_EQ(report.failures, 1);
  EXPECT_FALSE(report.jobs[1].ok);
  EXPECT_FALSE(report.jobs[1].error.empty());
  // Order is submission order even with the failure interleaved.
  EXPECT_EQ(report.jobs[0].name, "p64.c");
  EXPECT_EQ(report.jobs[1].name, "broken.c");
  EXPECT_EQ(report.jobs[2].name, "p96.c");
  EXPECT_TRUE(report.jobs[0].ok);
  EXPECT_TRUE(report.jobs[2].ok);
  EXPECT_TRUE(report.jobs[3].ok);
}

TEST(Batch, SharedArtifactCacheServesWarmRuns) {
  const std::string dir = (fs::temp_directory_path() / "hetpar-batch-cache-test").string();
  fs::remove_all(dir);

  BatchConfig c = config();
  c.workers = 2;
  c.artifactCache = std::make_shared<ArtifactCache>(dir);
  const BatchReport cold = runBatch(threePrograms(), c);
  EXPECT_EQ(cold.failures, 0);
  for (const BatchJobResult& job : cold.jobs) EXPECT_FALSE(job.outcomeCached);

  const BatchReport warm = runBatch(threePrograms(), c);
  EXPECT_EQ(warm.failures, 0);
  for (const BatchJobResult& job : warm.jobs) EXPECT_TRUE(job.outcomeCached);
  for (std::size_t i = 0; i < cold.jobs.size(); ++i)
    EXPECT_EQ(cold.jobs[i].report, warm.jobs[i].report);

  // Aggregated pass records surface the cache traffic.
  long long hits = 0;
  for (const PassRecord& rec : warm.allPasses()) hits += rec.cacheHits;
  EXPECT_EQ(hits, 3);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace hetpar::pipeline
