// Liveness-pruned communication payloads on the example pair
// (bench/affine_programs.hpp): per program, affine dependence analysis alone
// vs affine + FlowMode::Live. Reports every region's total CommIn/CommOut
// payload bytes and the ILP-estimated whole-program speedup on both preset
// platforms (Accelerator-scenario main class), and updates the
// "liveness_payloads" section of BENCH_parallelizer.json.
//
// Exit code 1 if liveness fails its claim on either program: the Live rows
// must strictly reduce comm bytes and must never worsen the estimate.
#include <cstdio>
#include <sstream>
#include <utility>

#include "affine_programs.hpp"
#include "common.hpp"
#include "hetpar/pipeline/evaluate.hpp"
#include "hetpar/platform/presets.hpp"

namespace {

using namespace hetpar;

/// Region-boundary communication only: bytes of edges entering from comm-in
/// or leaving to comm-out, summed over every hierarchical region. Sibling
/// flow edges are excluded — liveness pruning must not touch them.
long long commTotals(const htg::Graph& g) {
  long long bytes = 0;
  for (htg::NodeId id = 0; id < static_cast<htg::NodeId>(g.size()); ++id) {
    const htg::Node& n = g.node(id);
    if (!n.isHierarchical()) continue;
    for (const htg::Edge& e : n.edges)
      if (e.from == n.commIn || e.to == n.commOut) bytes += e.bytes;
  }
  return bytes;
}

double estimate(const char* source, const platform::Platform& pf, ir::FlowMode flow) {
  const htg::FrontendBundle bundle =
      htg::buildFromSource(source, ir::DependenceMode::Affine, flow);
  const cost::TimingModel timing(pf);
  parallel::ParallelizerOptions options;
  options.dependenceMode = ir::DependenceMode::Affine;
  options.flowMode = flow;
  parallel::Parallelizer tool(bundle.graph, timing, options);
  const parallel::ParallelizeOutcome outcome = tool.run();
  const platform::ClassId mainClass =
      pipeline::mainClassFor(pf, pipeline::Scenario::Accelerator);
  const parallel::SolutionRef best = outcome.bestRoot(bundle.graph, mainClass);
  const auto& rootSet = outcome.table.at(bundle.graph.root());
  return rootSet.at(rootSet.sequentialFor(mainClass)).timeSeconds /
         rootSet.at(best.index).timeSeconds;
}

const char* flowName(ir::FlowMode flow) {
  return flow == ir::FlowMode::Live ? "live" : "conservative";
}

}  // namespace

int main() {
  using namespace hetpar;
  const platform::Platform pa = platform::platformA();
  const platform::Platform pb = platform::platformB();
  const std::pair<const char*, const char*> programs[] = {
      {bench::kStencilName, bench::kStencilSource},
      {bench::kMatmulName, bench::kMatmulSource},
  };

  std::printf("Liveness comm-payload pruning (affine deps, ILP estimate)\n");
  std::printf("%-16s %-13s %10s %11s %11s\n", "program", "flow-mode", "comm B",
              "speedup(A)", "speedup(B)");
  std::printf("%-16s %-13s %10s %11s %11s\n", "-------", "---------", "------",
              "----------", "----------");

  bool ok = true;
  std::ostringstream json;
  json << "{\n    \"programs\": [\n";
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& [name, source] = programs[p];
    long long comm[2];
    double spdA[2], spdB[2];
    for (const ir::FlowMode flow : {ir::FlowMode::Conservative, ir::FlowMode::Live}) {
      std::fprintf(stderr, "[liveness_payloads] evaluating %s (%s) ...\n", name,
                   flowName(flow));
      const htg::FrontendBundle bundle =
          htg::buildFromSource(source, ir::DependenceMode::Affine, flow);
      const int i = flow == ir::FlowMode::Live ? 1 : 0;
      comm[i] = commTotals(bundle.graph);
      spdA[i] = estimate(source, pa, flow);
      spdB[i] = estimate(source, pb, flow);
      std::printf("%-16s %-13s %10lld %10.2fx %10.2fx\n", name, flowName(flow), comm[i],
                  spdA[i], spdB[i]);
    }
    if (comm[1] >= comm[0]) {
      std::fprintf(stderr, "FAIL %s: live comm bytes %lld not strictly below "
                           "conservative %lld\n",
                   name, comm[1], comm[0]);
      ok = false;
    }
    // "No worse" up to float noise: the pruned model removes cost terms, so
    // the optimum can only stay or improve.
    if (spdA[1] < spdA[0] * (1 - 1e-9) || spdB[1] < spdB[0] * (1 - 1e-9)) {
      std::fprintf(stderr, "FAIL %s: live speedup (%.4f, %.4f) below conservative "
                           "(%.4f, %.4f)\n",
                   name, spdA[1], spdB[1], spdA[0], spdB[0]);
      ok = false;
    }
    json << "      {\"name\": \"" << name << "\", \"commBytesConservative\": " << comm[0]
         << ", \"commBytesLive\": " << comm[1] << ",\n       \"speedupA\": [" << spdA[0]
         << ", " << spdA[1] << "], \"speedupB\": [" << spdB[0] << ", " << spdB[1]
         << "]}" << (p == 0 ? ",\n" : "\n");
  }
  json << "    ],\n    \"claim\": \"live comm bytes strictly lower, speedup no worse\"\n  }";

  bench::updateBenchJson("BENCH_parallelizer.json", "liveness_payloads", json.str());
  std::fprintf(stderr, "[liveness_payloads] updated BENCH_parallelizer.json\n");
  return ok ? 0 : 1;
}
