// Measures the solve engine's scaling across --jobs levels and records the
// repo's perf trajectory in BENCH_parallelizer.json.
//
// Workload per benchmark: the planning work an evaluation triggers on both
// platform presets — one heterogeneous parallelization plus the two
// homogeneous baseline views (Accelerator and Slower-Cores scenarios) per
// platform. Simulation and flattening are excluded on purpose: this bench
// times the solve engine, not the simulator. All runs within one jobs level
// share one region cache, like a tool session planning the same program
// against several platform views (which is also where the guaranteed cache
// hits come from: the Slower-Cores homogeneous view is identical for
// platforms A and B, so its regions memoize across platforms).
//
//   speedup_jobs [--benchmarks a,b,c] [--jobs N]
//
// Without --jobs the ladder is 1/2/4/8; with --jobs N it is 1/N.
#include "common.hpp"

#include <chrono>
#include <fstream>
#include <memory>
#include <thread>

#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/parallel/region_cache.hpp"
#include "hetpar/platform/presets.hpp"

namespace {

struct LevelResult {
  int jobs = 1;
  double wallSeconds = 0.0;
  long long ilpSolves = 0;
  long long cacheHits = 0;
  long long cacheMisses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hetpar;
  const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

  std::vector<int> levels = {1, 2, 4, 8};
  if (args.jobs != 1) levels = {1, args.jobs};

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4)
    std::fprintf(stderr,
                 "[speedup_jobs] warning: only %u hardware thread(s) available; "
                 "jobs > %u levels measure scheduling overhead, not speedup\n",
                 hw, hw == 0 ? 1 : hw);

  const std::vector<platform::Platform> platforms = {platform::platformA(),
                                                     platform::platformB()};

  struct Prepared {
    std::string name;
    htg::FrontendBundle bundle;
  };
  std::vector<Prepared> prepared;
  for (const auto& b : args.benchmarks) {
    htg::FrontendBundle bundle = htg::buildFromSource(b.source);
    htg::validateOrThrow(bundle.graph);
    prepared.push_back({b.name, std::move(bundle)});
  }

  std::vector<LevelResult> results;
  for (const int jobs : levels) {
    LevelResult r;
    r.jobs = jobs;
    parallel::IlpStatistics total;
    auto cache = std::make_shared<parallel::IlpRegionCache>();
    const auto start = std::chrono::steady_clock::now();
    for (const Prepared& p : prepared) {
      std::fprintf(stderr, "[speedup_jobs] jobs=%d %s ...\n", jobs, p.name.c_str());
      for (const platform::Platform& pf : platforms) {
        parallel::ParallelizerOptions po;
        po.jobs = jobs;
        po.regionCache = cache;

        const cost::TimingModel timing(pf);
        parallel::Parallelizer het(p.bundle.graph, timing, po);
        total.merge(het.run().stats);

        for (const platform::ClassId mainClass : {pf.slowestClass(), pf.fastestClass()})
          total.merge(
              parallel::runHomogeneousBaseline(p.bundle.graph, pf, mainClass, po)
                  .outcome.stats);
      }
    }
    r.wallSeconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                        .count();
    r.ilpSolves = total.numIlps;
    r.cacheHits = total.cacheHits;
    r.cacheMisses = total.cacheMisses;
    results.push_back(r);
  }

  const double base = results.front().wallSeconds;
  std::printf("\nSolve engine scaling (%zu benchmarks x %zu platforms, het + 2 hom runs each)\n",
              prepared.size(), platforms.size());
  std::printf("%6s %12s %9s %12s %12s %12s\n", "jobs", "wall [s]", "speedup", "ILP solves",
              "cache hits", "cache miss");
  for (const LevelResult& r : results)
    std::printf("%6d %12.2f %8.2fx %12lld %12lld %12lld\n", r.jobs, r.wallSeconds,
                r.wallSeconds > 0 ? base / r.wallSeconds : 0.0, r.ilpSolves, r.cacheHits,
                r.cacheMisses);

  std::ostringstream json;
  json << "{\n    \"hardware_concurrency\": " << hw << ",\n";
  json << "    \"benchmarks\": [";
  for (std::size_t i = 0; i < prepared.size(); ++i)
    json << (i ? ", " : "") << '"' << prepared[i].name << '"';
  json << "],\n    \"levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    json << "      {\"jobs\": " << r.jobs << ", \"wall_seconds\": " << r.wallSeconds
         << ", \"speedup_vs_jobs1\": " << (r.wallSeconds > 0 ? base / r.wallSeconds : 0.0)
         << ", \"ilp_solves\": " << r.ilpSolves << ", \"cache_hits\": " << r.cacheHits
         << ", \"cache_misses\": " << r.cacheMisses << "}" << (i + 1 < results.size() ? "," : "")
         << "\n";
  }
  json << "    ]\n  }";
  bench::updateBenchJson("BENCH_parallelizer.json", "speedup_jobs", json.str());
  std::fprintf(stderr, "[speedup_jobs] updated BENCH_parallelizer.json\n");
  return 0;
}
