// Ablation study over the design choices DESIGN.md calls out:
//   * LoopChunked mode (iteration-level splitting) on/off,
//   * Parallel Set Mapping (Eq 3-4, nested-candidate combination) on/off,
//   * task-creation overhead sensitivity (the TCO constant of Eq 8),
//   * chunk balancing quality across scenarios.
// Run on two representative kernels: one DOALL-dominated (fir_256) and one
// task-structured (filterbank).
#include <cstdio>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/pipeline/evaluate.hpp"

int main() {
  using namespace hetpar;

  const char* kernels[] = {"fir_256", "filterbank"};
  std::printf("Ablation: design choices, platform (A), accelerator scenario\n\n");
  std::printf("%-12s %-28s %12s %12s\n", "benchmark", "configuration", "het speedup",
              "hom speedup");
  std::printf("%s\n", std::string(68, '-').c_str());

  for (const char* name : kernels) {
    const auto& b = benchsuite::find(name);

    struct Config {
      const char* label;
      parallel::ParallelizerOptions options;
    };
    parallel::ParallelizerOptions base;
    parallel::ParallelizerOptions noChunk = base;
    noChunk.enableChunking = false;
    parallel::ParallelizerOptions noPsm = base;
    noPsm.enableParallelSetMapping = false;
    parallel::ParallelizerOptions twoTasks = base;
    twoTasks.maxTasksPerRegion = 2;
    const Config configs[] = {
        {"full", base},
        {"no loop chunking", noChunk},
        {"no parallel-set mapping", noPsm},
        {"max 2 tasks per region", twoTasks},
    };

    for (const Config& cfg : configs) {
      std::fprintf(stderr, "[ablation] %s / %s ...\n", name, cfg.label);
      pipeline::EvalOptions opts;
      opts.parallelizer = cfg.options;
      const pipeline::EvalResult r = pipeline::evaluateBenchmark(
          name, b.source, platform::platformA(), pipeline::Scenario::Accelerator, opts);
      std::printf("%-12s %-28s %11.2fx %11.2fx\n", name, cfg.label, r.heterogeneousSpeedup,
                  r.homogeneousSpeedup);
    }
  }

  // TCO sensitivity: higher spawn costs shrink the profitable granularity.
  std::printf("\nTCO sensitivity (fir_256, platform (A), accelerator scenario)\n");
  std::printf("%-16s %12s\n", "tco (us)", "het speedup");
  for (double tcoUs : {5.0, 25.0, 125.0, 625.0}) {
    platform::Platform pf("A_tco",
                          {{"arm_100", 100.0, 1}, {"arm_250", 250.0, 1}, {"arm_500", 500.0, 2}},
                          platform::platformA().interconnect(), tcoUs * 1e-6);
    std::fprintf(stderr, "[ablation] tco=%.0fus ...\n", tcoUs);
    const pipeline::EvalOptions opts;
    const pipeline::EvalResult r =
        pipeline::evaluateBenchmark("fir_256", benchsuite::find("fir_256").source, pf,
                               pipeline::Scenario::Accelerator, opts);
    std::printf("%-16.0f %11.2fx\n", tcoUs, r.heterogeneousSpeedup);
  }
  return 0;
}
