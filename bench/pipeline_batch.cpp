// Measures the staged pipeline's batch driver over the example set:
// cold-vs-warm persistent-cache compile times plus a workers sweep, recorded
// in the "pipeline_batch" section of BENCH_parallelizer.json.
//
// Per workers level the example programs are compiled twice through
// pipeline::runBatch against a fresh on-disk artifact cache: the first run
// is cold (every parallelize outcome is solved and stored), the second is
// warm (every outcome is served from the cache). The cold runs across
// levels double as the jobs sweep. The acceptance bar from the pipeline PR:
// warm must be >= 5x faster than cold — a warm hit deserializes an outcome
// instead of re-running the ILP solver, so in practice the ratio is orders
// of magnitude.
//
//   pipeline_batch [--benchmarks a,b,c] [--jobs N]
//
// Without --jobs the workers ladder is 1/2/4; with --jobs N it is 1/N.
#include "common.hpp"

#include <filesystem>
#include <memory>
#include <thread>

#include "hetpar/pipeline/batch.hpp"
#include "hetpar/platform/presets.hpp"

namespace {

struct LevelResult {
  int workers = 1;
  double coldSeconds = 0.0;
  double warmSeconds = 0.0;
  long long coldMisses = 0;
  long long warmHits = 0;
  int failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hetpar;
  namespace fs = std::filesystem;
  const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

  std::vector<int> levels = {1, 2, 4};
  if (args.jobs != 1) levels = {1, args.jobs};

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2)
    std::fprintf(stderr,
                 "[pipeline_batch] warning: only %u hardware thread(s); the workers "
                 "sweep measures scheduling overhead, not scaling\n",
                 hw == 0 ? 1 : hw);

  std::vector<pipeline::BatchJob> jobs;
  for (const auto& b : args.benchmarks) jobs.push_back({b.name, b.source});

  const fs::path cacheRoot =
      fs::temp_directory_path() / "hetpar-pipeline-batch-bench";
  fs::remove_all(cacheRoot);

  std::vector<LevelResult> results;
  for (const int workers : levels) {
    pipeline::BatchConfig config;
    config.platform = platform::platformA();
    config.simulate = true;
    config.workers = workers;
    config.regionCache = std::make_shared<parallel::IlpRegionCache>();
    config.artifactCache = std::make_shared<pipeline::ArtifactCache>(
        (cacheRoot / ("workers" + std::to_string(workers))).string());

    LevelResult r;
    r.workers = workers;
    std::fprintf(stderr, "[pipeline_batch] workers=%d cold ...\n", workers);
    const pipeline::BatchReport cold = pipeline::runBatch(jobs, config);
    r.coldSeconds = cold.wallSeconds;
    r.failures = cold.failures;
    for (const pipeline::PassRecord& rec : cold.allPasses()) r.coldMisses += rec.cacheMisses;

    std::fprintf(stderr, "[pipeline_batch] workers=%d warm ...\n", workers);
    const pipeline::BatchReport warm = pipeline::runBatch(jobs, config);
    r.warmSeconds = warm.wallSeconds;
    r.failures += warm.failures;
    for (const pipeline::PassRecord& rec : warm.allPasses()) r.warmHits += rec.cacheHits;
    results.push_back(r);
  }
  fs::remove_all(cacheRoot);

  std::printf("\nBatch compile, cold vs warm artifact cache (%zu programs)\n", jobs.size());
  std::printf("%8s %12s %12s %12s %12s %10s\n", "workers", "cold [s]", "warm [s]",
              "warm gain", "cold miss", "warm hit");
  for (const LevelResult& r : results)
    std::printf("%8d %12.2f %12.4f %11.1fx %12lld %10lld\n", r.workers, r.coldSeconds,
                r.warmSeconds, r.warmSeconds > 0 ? r.coldSeconds / r.warmSeconds : 0.0,
                r.coldMisses, r.warmHits);

  std::ostringstream json;
  json << "{\n    \"hardware_concurrency\": " << hw << ",\n";
  json << "    \"benchmarks\": [";
  for (std::size_t i = 0; i < jobs.size(); ++i)
    json << (i ? ", " : "") << '"' << jobs[i].name << '"';
  json << "],\n    \"levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    json << "      {\"workers\": " << r.workers
         << ", \"cold_wall_seconds\": " << r.coldSeconds
         << ", \"warm_wall_seconds\": " << r.warmSeconds << ", \"warm_speedup\": "
         << (r.warmSeconds > 0 ? r.coldSeconds / r.warmSeconds : 0.0)
         << ", \"cold_cache_misses\": " << r.coldMisses
         << ", \"warm_cache_hits\": " << r.warmHits << ", \"failures\": " << r.failures
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "    ]\n  }";
  bench::updateBenchJson("BENCH_parallelizer.json", "pipeline_batch", json.str());
  std::fprintf(stderr, "[pipeline_batch] updated BENCH_parallelizer.json\n");

  int failures = 0;
  for (const LevelResult& r : results) failures += r.failures;
  return failures == 0 ? 0 : 2;
}
