// Affine vs conservative dependence analysis on the example pair
// (bench/affine_programs.hpp): per program and mode, the HTG's total
// dependence-edge count, the total flow/comm payload, and the ILP-estimated
// whole-program speedup on both preset platforms (Accelerator-scenario main
// class). The affine rows must strictly reduce edges and bytes and improve
// the estimate — tests/integration/affine_examples_test.cpp guards the same
// claim in ctest.
#include <cstdio>
#include <utility>

#include "affine_programs.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/pipeline/evaluate.hpp"

namespace {

using namespace hetpar;

double estimate(const char* source, const platform::Platform& pf, ir::DependenceMode mode) {
  return bench::ilpEstimatedSpeedup(source, pf,
                                    pipeline::mainClassFor(pf, pipeline::Scenario::Accelerator), mode);
}

const char* modeName(ir::DependenceMode mode) {
  return mode == ir::DependenceMode::Affine ? "affine" : "conservative";
}

}  // namespace

int main() {
  using namespace hetpar;
  const platform::Platform pa = platform::platformA();
  const platform::Platform pb = platform::platformB();
  const std::pair<const char*, const char*> programs[] = {
      {bench::kStencilName, bench::kStencilSource},
      {bench::kMatmulName, bench::kMatmulSource},
  };

  std::printf("Dependence-mode comparison (ILP estimate, Accelerator main class)\n");
  std::printf("%-16s %-13s %6s %10s %11s %11s\n", "program", "dep-mode", "edges",
              "comm B", "speedup(A)", "speedup(B)");
  std::printf("%-16s %-13s %6s %10s %11s %11s\n", "-------", "--------", "-----",
              "------", "----------", "----------");
  for (const auto& [name, source] : programs) {
    for (const ir::DependenceMode mode :
         {ir::DependenceMode::Conservative, ir::DependenceMode::Affine}) {
      std::fprintf(stderr, "[affine_deps] evaluating %s (%s) ...\n", name, modeName(mode));
      const htg::FrontendBundle bundle = htg::buildFromSource(source, mode);
      const bench::DepTotals totals = bench::depTotals(bundle.graph);
      std::printf("%-16s %-13s %6d %10lld %10.2fx %10.2fx\n", name, modeName(mode),
                  totals.edges, totals.bytes, estimate(source, pa, mode),
                  estimate(source, pb, mode));
    }
  }
  return 0;
}
