// Reproduces paper Figure 8: speedups on platform configuration (B)
// (2x200 + 2x500 MHz -- the ~2.5x big.LITTLE performance discrepancy) for
// both evaluation scenarios.
//
// Expected shape (paper Section VI-A): homogeneous ~3x in (a), up to 1.7x
// in (b); heterogeneous >6x for boundary value / compress / mult in (a)
// (limit 7x), up to 2.6x in (b) (limit 2.8x); averages 2.9x vs 4.5x in (a).
#include "common.hpp"

#include "hetpar/platform/presets.hpp"

int main(int argc, char** argv) {
  using namespace hetpar;
  const platform::Platform pf = platform::platformB();
  const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
  pipeline::EvalOptions evalOptions;
  evalOptions.parallelizer.jobs = args.jobs;

  std::vector<std::string> names;
  std::vector<double> homA, hetA, homB, hetB;
  double limitA = 0.0;
  double limitB = 0.0;

  std::printf("Platform configuration (B): %s\n", pf.summary().c_str());
  for (const auto& b : args.benchmarks) {
    std::fprintf(stderr, "[fig8] evaluating %s ...\n", b.name.c_str());
    const bench::ScenarioPair pair = bench::evaluateBoth(b.name, b.source, pf, evalOptions);
    names.push_back(b.name);
    homA.push_back(pair.accelerator.homogeneousSpeedup);
    hetA.push_back(pair.accelerator.heterogeneousSpeedup);
    homB.push_back(pair.slowerCores.homogeneousSpeedup);
    hetB.push_back(pair.slowerCores.heterogeneousSpeedup);
    limitA = pair.accelerator.theoreticalLimit;
    limitB = pair.slowerCores.theoreticalLimit;
  }

  bench::printScenarioTable("Figure 8(a): Accelerator Scenario, platform (B)", limitA, names,
                            homA, hetA);
  bench::printScenarioTable("Figure 8(b): Slower Cores Scenario, platform (B)", limitB, names,
                            homB, hetB);
  return 0;
}
