// Reproduces paper Table I: statistics of the ILP-based parallelization
// algorithms — per benchmark, the parallelization time, number of generated
// ILPs, total variables and constraints for the homogeneous approach [6]
// and the new heterogeneous approach, plus the ratio between them.
//
// Expected shape (paper Section VI-B): the heterogeneous approach creates
// more ILPs (2.4-7.4x, avg 3.5x), more variables (4.9-14.8x, avg 7.0x) and
// more constraints (4.1-11.2x, avg 5.5x) than the homogeneous one, and its
// parallelization time is correspondingly larger. Absolute times depend on
// the solver host (the paper used lp_solve/CPLEX on a 2.4 GHz Opteron; we
// use hetpar's own branch-and-bound solver).
#include <cstdio>

#include "common.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"

int main(int argc, char** argv) {
  using namespace hetpar;
  const platform::Platform pf = platform::platformA();
  const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
  parallel::ParallelizerOptions parOpts;
  parOpts.jobs = args.jobs;

  std::printf("Table I: statistics of the ILP-based parallelization algorithms\n");
  std::printf("platform: %s; main processor class for the baseline view: %s\n\n",
              pf.summary().c_str(), pf.classAt(pf.slowestClass()).name.c_str());
  std::printf("%-12s | %8s %6s %9s %9s | %8s %6s %9s %9s | %6s %6s %6s %6s\n",
              "", "Time", "#ILPs", "#Var", "#Constr", "Time", "#ILPs", "#Var", "#Constr",
              "Time", "#ILPs", "#Var", "#Constr");
  std::printf("%-12s | %40s | %40s | %27s\n", "Benchmark", "Homogeneous approach [6]",
              "New Heterogeneous approach", "Factor");
  std::printf("%s\n", std::string(130, '-').c_str());

  parallel::IlpStatistics homTotal, hetTotal;
  int count = 0;
  for (const auto& b : args.benchmarks) {
    std::fprintf(stderr, "[table1] parallelizing %s ...\n", b.name.c_str());
    htg::FrontendBundle bundle = htg::buildFromSource(b.source);

    // Homogeneous approach [6]: single-class view of the platform.
    parallel::HomogeneousRun hom =
        parallel::runHomogeneousBaseline(bundle.graph, pf, pf.slowestClass(), parOpts);
    // New heterogeneous approach: full platform.
    const cost::TimingModel timing(pf);
    parallel::Parallelizer het(bundle.graph, timing, parOpts);
    parallel::ParallelizeOutcome hetOut = het.run();

    const auto& hs = hom.outcome.stats;
    const auto& xs = hetOut.stats;
    auto factor = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    std::printf("%-12s | %8s %6lld %9s %9s | %8s %6lld %9s %9s | %5.1fx %5.1fx %5.1fx %5.1fx\n",
                b.name.c_str(), strings::formatMinSec(hs.wallSeconds).c_str(), hs.numIlps,
                strings::formatThousands(hs.numVars).c_str(),
                strings::formatThousands(hs.numConstraints).c_str(),
                strings::formatMinSec(xs.wallSeconds).c_str(), xs.numIlps,
                strings::formatThousands(xs.numVars).c_str(),
                strings::formatThousands(xs.numConstraints).c_str(),
                factor(xs.wallSeconds, hs.wallSeconds),
                factor(double(xs.numIlps), double(hs.numIlps)),
                factor(double(xs.numVars), double(hs.numVars)),
                factor(double(xs.numConstraints), double(hs.numConstraints)));
    homTotal.merge(hs);
    hetTotal.merge(xs);
    ++count;
  }
  if (count > 0) {
    auto factor = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    const double c = count;
    std::printf("%s\n", std::string(130, '-').c_str());
    std::printf("%-12s | %8s %6.0f %9s %9s | %8s %6.0f %9s %9s | %5.1fx %5.1fx %5.1fx %5.1fx\n",
                "average", strings::formatMinSec(homTotal.wallSeconds / c).c_str(),
                double(homTotal.numIlps) / c,
                strings::formatThousands(static_cast<long long>(homTotal.numVars / count)).c_str(),
                strings::formatThousands(static_cast<long long>(homTotal.numConstraints / count)).c_str(),
                strings::formatMinSec(hetTotal.wallSeconds / c).c_str(),
                double(hetTotal.numIlps) / c,
                strings::formatThousands(static_cast<long long>(hetTotal.numVars / count)).c_str(),
                strings::formatThousands(static_cast<long long>(hetTotal.numConstraints / count)).c_str(),
                factor(hetTotal.wallSeconds, homTotal.wallSeconds),
                factor(double(hetTotal.numIlps), double(homTotal.numIlps)),
                factor(double(hetTotal.numVars), double(homTotal.numVars)),
                factor(double(hetTotal.numConstraints), double(homTotal.numConstraints)));
  }
  return 0;
}
