// google-benchmark microbenchmarks of the ILP substrate: LP solves, MILP
// branch-and-bound, warm vs cold starts, and representative ILPPAR models.
#include <benchmark/benchmark.h>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/ilp/simplex.hpp"
#include "hetpar/parallel/ilppar_model.hpp"
#include "hetpar/support/rng.hpp"

namespace {

using namespace hetpar;
using namespace hetpar::ilp;

/// Random dense-ish LP with `n` variables and `n` rows.
Model randomLp(int n, std::uint64_t seed) {
  Rng rng(seed);
  Model m("lp");
  std::vector<Var> xs;
  for (int i = 0; i < n; ++i) xs.push_back(m.addContinuous(0, 10, "x" + std::to_string(i)));
  for (int r = 0; r < n; ++r) {
    LinearExpr lhs;
    for (int i = 0; i < n; ++i)
      if (rng.chance(0.3)) lhs += LinearExpr::term(double(rng.range(1, 5)), xs[size_t(i)]);
    m.addLe(lhs, double(rng.range(n, 4 * n)));
  }
  LinearExpr obj;
  for (int i = 0; i < n; ++i) obj += LinearExpr::term(double(rng.range(1, 9)), xs[size_t(i)]);
  m.setObjective(obj, Sense::Maximize);
  return m;
}

void BM_SimplexDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Model m = randomLp(n, 42);
  std::vector<double> lb, ub;
  for (const auto& v : m.vars()) {
    lb.push_back(v.lowerBound);
    ub.push_back(v.upperBound);
  }
  StandardForm sf = buildLp(m, lb, ub);
  for (auto _ : state) {
    BoundedSimplex splx;
    benchmark::DoNotOptimize(splx.solve(sf.problem));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

Model knapsack(int items, std::uint64_t seed) {
  Rng rng(seed);
  Model m("knap");
  LinearExpr w, v;
  for (int i = 0; i < items; ++i) {
    Var x = m.addBool("x" + std::to_string(i));
    w += LinearExpr::term(double(rng.range(2, 30)), x);
    v += LinearExpr::term(double(rng.range(2, 40)), x);
  }
  m.addLe(w, items * 8.0);
  m.setObjective(v, Sense::Maximize);
  return m;
}

void BM_BnbKnapsack(benchmark::State& state) {
  Model m = knapsack(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    BranchAndBoundSolver solver;
    benchmark::DoNotOptimize(solver.solve(m));
  }
}
BENCHMARK(BM_BnbKnapsack)->Arg(10)->Arg(20)->Arg(30);

void BM_WarmVsColdRestart(benchmark::State& state) {
  const bool warmStart = state.range(0) != 0;
  Model m = randomLp(96, 11);
  std::vector<double> lb, ub;
  for (const auto& v : m.vars()) {
    lb.push_back(v.lowerBound);
    ub.push_back(v.upperBound);
  }
  StandardForm sf = buildLp(m, lb, ub);
  BoundedSimplex splx;
  SimplexBasis basis;
  splx.solve(sf.problem, 0, nullptr, &basis);
  for (auto _ : state) {
    // Tighten one variable bound (the branch-and-bound pattern).
    sf.problem.upper[0] = sf.problem.upper[0] > 5 ? 5.0 : 10.0;
    benchmark::DoNotOptimize(
        splx.solve(sf.problem, 0, warmStart ? &basis : nullptr, nullptr));
  }
}
BENCHMARK(BM_WarmVsColdRestart)->Arg(0)->Arg(1);

parallel::IlpRegion representativeRegion(int children, int classes) {
  parallel::IlpRegion r;
  r.name = "bench";
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 4;
  r.taskCreationSeconds = 25e-6;
  r.numProcsPerClass.assign(static_cast<std::size_t>(classes), 2);
  for (int i = 0; i < children; ++i) {
    parallel::IlpChild c;
    for (int cls = 0; cls < classes; ++cls) {
      parallel::IlpCandidate cand;
      cand.timeSeconds = (1.0 + i % 3) * 1e-3 / (1 + cls);
      cand.extraProcs.assign(static_cast<std::size_t>(classes), 0);
      c.byClass.push_back({cand});
    }
    r.children.push_back(std::move(c));
    if (i > 0 && i % 2 == 0) {
      parallel::IlpEdgeSpec e;
      e.from = i - 1;
      e.to = i;
      e.commSeconds = 5e-6;
      r.edges.push_back(e);
    }
  }
  return r;
}

void BM_IlpParSolve(benchmark::State& state) {
  const auto region = representativeRegion(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(1)));
  for (auto _ : state) {
    BranchAndBoundSolver solver;
    benchmark::DoNotOptimize(parallel::solveIlpPar(region, solver));
  }
}
BENCHMARK(BM_IlpParSolve)->Args({4, 1})->Args({4, 3})->Args({8, 1})->Args({8, 3});

void BM_ChunkIlpSolve(benchmark::State& state) {
  parallel::ChunkRegion r;
  r.name = "bench";
  r.iterations = state.range(0);
  r.secondsPerIter = {50e-9, 20e-9, 10e-9};
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 4;
  r.taskCreationSeconds = 25e-6;
  r.numProcsPerClass = {1, 1, 2};
  r.commInLatency = 5e-7;
  r.commInSecondsPerIter = 1e-9;
  for (auto _ : state) {
    BranchAndBoundSolver solver;
    benchmark::DoNotOptimize(parallel::solveChunkIlp(r, solver));
  }
}
BENCHMARK(BM_ChunkIlpSolve)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
