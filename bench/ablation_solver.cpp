// LP engine ablation: the production sparse revised simplex (LU +
// product-form updates) against the retained dense explicit-inverse engine
// on ILPPAR-shaped models, plus warm-vs-cold restarts and end-to-end
// branch-and-bound region solves. Records per-LP solve time, speedup and
// iteration throughput in the "simplex" section of BENCH_parallelizer.json.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/ilp/simplex.hpp"
#include "hetpar/parallel/ilppar_model.hpp"
#include "hetpar/support/rng.hpp"
#include "common.hpp"

namespace {

using namespace hetpar;
using namespace hetpar::ilp;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ILPPAR-shaped sparse LP: a few nonzeros per row (budget rows touch one
/// class's variables, linking rows touch a handful), never dense. With
/// `nv` structural variables and `nc` constraints buildLp lands at
/// nv + nc columns.
Model sparseLp(int nv, int nc, std::uint64_t seed) {
  Rng rng(seed);
  Model m("lp");
  std::vector<Var> xs;
  for (int i = 0; i < nv; ++i) xs.push_back(m.addContinuous(0, 10, "x" + std::to_string(i)));
  for (int r = 0; r < nc; ++r) {
    LinearExpr lhs;
    const int nnz = static_cast<int>(rng.range(3, 6));
    for (int k = 0; k < nnz; ++k) {
      const auto i = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nv)));
      lhs += LinearExpr::term(double(rng.range(1, 5)), xs[i]);
    }
    m.addLe(lhs, double(rng.range(nc, 4 * nc)));
  }
  LinearExpr obj;
  for (int i = 0; i < nv; ++i)
    obj += LinearExpr::term(double(rng.range(1, 9)), xs[static_cast<std::size_t>(i)]);
  m.setObjective(obj, Sense::Maximize);
  return m;
}

StandardForm standardForm(const Model& m) {
  std::vector<double> lb, ub;
  for (const auto& v : m.vars()) {
    lb.push_back(v.lowerBound);
    ub.push_back(v.upperBound);
  }
  return buildLp(m, lb, ub);
}

struct EngineResult {
  double perLpSeconds = 0.0;
  double iterationsPerSecond = 0.0;
  long long iterations = 0;
};

/// Cold-solves each problem `reps` times under one engine.
EngineResult timeColdSolves(const std::vector<StandardForm>& problems,
                            SolverEngine engine, int reps) {
  EngineResult out;
  long long solves = 0;
  const double start = now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const StandardForm& sf : problems) {
      BoundedSimplex splx(1e-9, engine);
      const LpResult r = splx.solve(sf.problem);
      out.iterations += r.iterations;
      ++solves;
    }
  }
  const double wall = now() - start;
  out.perLpSeconds = wall / static_cast<double>(solves);
  out.iterationsPerSecond = wall > 0 ? static_cast<double>(out.iterations) / wall : 0.0;
  return out;
}

/// Branch-and-bound restart pattern: re-solve under alternating one-bound
/// tightenings, warm-starting from the previous optimal basis.
double timeWarmRestarts(const StandardForm& sf0, SolverEngine engine, int reps) {
  StandardForm sf = sf0;
  BoundedSimplex splx(1e-9, engine);
  SimplexBasis basis;
  splx.solve(sf.problem, 0, nullptr, &basis);
  const double start = now();
  for (int rep = 0; rep < reps; ++rep) {
    sf.problem.upper[0] = sf.problem.upper[0] > 5 ? 5.0 : 10.0;
    SimplexBasis next;
    splx.solve(sf.problem, 0, &basis, &next);
    basis = next;
  }
  return (now() - start) / static_cast<double>(reps);
}

parallel::IlpRegion representativeRegion(int children, int classes) {
  parallel::IlpRegion r;
  r.name = "bench";
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 4;
  r.taskCreationSeconds = 25e-6;
  r.numProcsPerClass.assign(static_cast<std::size_t>(classes), 2);
  for (int i = 0; i < children; ++i) {
    parallel::IlpChild c;
    for (int cls = 0; cls < classes; ++cls) {
      parallel::IlpCandidate cand;
      cand.timeSeconds = (1.0 + i % 3) * 1e-3 / (1 + cls);
      cand.extraProcs.assign(static_cast<std::size_t>(classes), 0);
      c.byClass.push_back({cand});
    }
    r.children.push_back(std::move(c));
    if (i > 0 && i % 2 == 0) {
      parallel::IlpEdgeSpec e;
      e.from = i - 1;
      e.to = i;
      e.commSeconds = 5e-6;
      r.edges.push_back(e);
    }
  }
  return r;
}

double timeIlpParSolves(const parallel::IlpRegion& region, SolverEngine engine, int reps) {
  SolveOptions so;
  so.engine = engine;
  const double start = now();
  for (int rep = 0; rep < reps; ++rep) {
    BranchAndBoundSolver solver(so);
    parallel::solveIlpPar(region, solver);
  }
  return (now() - start) / static_cast<double>(reps);
}

}  // namespace

int main() {
  // ~330 structural variables over ~300 constraints — the model size the
  // fuzz profile's widened 4-task / 16-chunk regions produce. The dense
  // engine pays O(rows^2) per iteration here; the sparse factors do not.
  constexpr int kVars = 330;
  constexpr int kRows = 300;
  constexpr int kModels = 8;
  constexpr int kReps = 3;

  std::vector<StandardForm> problems;
  for (int i = 0; i < kModels; ++i)
    problems.push_back(standardForm(sparseLp(kVars, kRows, 42 + std::uint64_t(i))));
  const int lpCols = problems.front().problem.numCols;

  const EngineResult dense = timeColdSolves(problems, SolverEngine::Dense, kReps);
  const EngineResult revised = timeColdSolves(problems, SolverEngine::Revised, kReps);
  const double speedup = revised.perLpSeconds > 0
                             ? dense.perLpSeconds / revised.perLpSeconds
                             : 0.0;

  const double warmDense = timeWarmRestarts(problems.front(), SolverEngine::Dense, 200);
  const double warmRevised = timeWarmRestarts(problems.front(), SolverEngine::Revised, 200);

  const parallel::IlpRegion region = representativeRegion(8, 3);
  const double regionDense = timeIlpParSolves(region, SolverEngine::Dense, 20);
  const double regionRevised = timeIlpParSolves(region, SolverEngine::Revised, 20);

  std::printf("LP engine ablation (%d models, %d cols each, %d reps)\n", kModels, lpCols,
              kReps);
  std::printf("%-22s %14s %14s %9s\n", "workload", "dense", "revised", "speedup");
  std::printf("%-22s %11.3f ms %11.3f ms %8.2fx\n", "cold LP solve",
              dense.perLpSeconds * 1e3, revised.perLpSeconds * 1e3, speedup);
  std::printf("%-22s %11.3f ms %11.3f ms %8.2fx\n", "warm restart",
              warmDense * 1e3, warmRevised * 1e3,
              warmRevised > 0 ? warmDense / warmRevised : 0.0);
  std::printf("%-22s %11.3f ms %11.3f ms %8.2fx\n", "ILPPAR region (bnb)",
              regionDense * 1e3, regionRevised * 1e3,
              regionRevised > 0 ? regionDense / regionRevised : 0.0);
  std::printf("iterations/s: dense %.0f, revised %.0f\n", dense.iterationsPerSecond,
              revised.iterationsPerSecond);

  std::ostringstream json;
  json << "{\n    \"lp_cols\": " << lpCols << ",\n"
       << "    \"models\": " << kModels << ",\n"
       << "    \"dense_per_lp_seconds\": " << dense.perLpSeconds << ",\n"
       << "    \"revised_per_lp_seconds\": " << revised.perLpSeconds << ",\n"
       << "    \"speedup\": " << speedup << ",\n"
       << "    \"dense_iterations_per_second\": " << dense.iterationsPerSecond << ",\n"
       << "    \"revised_iterations_per_second\": " << revised.iterationsPerSecond << ",\n"
       << "    \"warm_dense_seconds\": " << warmDense << ",\n"
       << "    \"warm_revised_seconds\": " << warmRevised << ",\n"
       << "    \"ilppar_region_dense_seconds\": " << regionDense << ",\n"
       << "    \"ilppar_region_revised_seconds\": " << regionRevised << "\n  }";
  hetpar::bench::updateBenchJson("BENCH_parallelizer.json", "simplex", json.str());
  std::fprintf(stderr, "[ablation_solver] updated BENCH_parallelizer.json\n");
  return 0;
}
