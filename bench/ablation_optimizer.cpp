// ILP vs genetic algorithm (the authors' earlier approach [7]) on the same
// partitioning-and-mapping problems. The paper argues for ILP because
// "solvers guarantee to find the optimal solution if one exists"; this
// harness quantifies the gap on representative region shapes.
#include <chrono>
#include <cstdio>

#include "hetpar/parallel/genetic.hpp"
#include "hetpar/support/rng.hpp"

namespace {

using namespace hetpar;
using namespace hetpar::parallel;

IlpRegion randomRegion(int children, int classes, std::uint64_t seed) {
  Rng rng(seed);
  IlpRegion r;
  r.name = "rand";
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 4;
  r.taskCreationSeconds = 25e-6;
  r.numProcsPerClass.assign(static_cast<std::size_t>(classes), 2);
  for (int i = 0; i < children; ++i) {
    IlpChild c;
    const double base = rng.uniform(0.2e-3, 3e-3);
    for (int cls = 0; cls < classes; ++cls) {
      IlpCandidate cand;
      cand.timeSeconds = base / (1.0 + cls * 1.5);
      cand.extraProcs.assign(static_cast<std::size_t>(classes), 0);
      c.byClass.push_back({cand});
    }
    r.children.push_back(std::move(c));
  }
  // Sprinkle forward dependences.
  for (int i = 0; i < children; ++i)
    for (int j = i + 1; j < children; ++j)
      if (rng.chance(0.15)) {
        IlpEdgeSpec e;
        e.from = i;
        e.to = j;
        e.commSeconds = rng.uniform(1e-6, 60e-6);
        r.edges.push_back(e);
      }
  return r;
}

}  // namespace

int main() {
  std::printf("Optimizer ablation: ILP (this paper) vs genetic algorithm [7]\n");
  std::printf("%-22s %12s %12s %10s %10s %8s\n", "region", "ILP (ms)", "GA (ms)", "gap",
              "ILP time", "GA time");
  std::printf("%s\n", std::string(80, '-').c_str());

  double worstGap = 0.0;
  for (int children : {4, 6, 8, 10}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const IlpRegion region = randomRegion(children, 3, seed);

      const auto t0 = std::chrono::steady_clock::now();
      ilp::SolveOptions so;
      so.timeLimitSeconds = 30;
      ilp::BranchAndBoundSolver solver(so);
      const IlpParResult ilpRes = solveIlpPar(region, solver);
      const double ilpSec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      const auto t1 = std::chrono::steady_clock::now();
      const IlpParResult gaRes = solveGaPar(region);
      const double gaSec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

      if (!ilpRes.feasible || !gaRes.feasible) {
        std::printf("n=%d seed=%llu: infeasible run\n", children,
                    static_cast<unsigned long long>(seed));
        continue;
      }
      const double gap = gaRes.timeSeconds / ilpRes.timeSeconds - 1.0;
      worstGap = std::max(worstGap, gap);
      std::printf("n=%-2d seed=%llu %-10s %11.4f %12.4f %9.1f%% %9.3fs %7.3fs\n", children,
                  static_cast<unsigned long long>(seed), ilpRes.provenOptimal ? "(optimal)" : "",
                  ilpRes.timeSeconds * 1e3, gaRes.timeSeconds * 1e3, gap * 100.0, ilpSec,
                  gaSec);
    }
  }
  std::printf("\nworst GA gap over the sweep: %.1f%% above the ILP optimum\n", worstGap * 100.0);
  return 0;
}
