// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/sim/measure.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::bench {

/// Both scenarios for one benchmark on one platform. The heterogeneous
/// parallelization is platform-dependent but scenario-independent, so it
/// runs once; the homogeneous baseline re-plans per scenario (its uniform
/// platform view is derived from the scenario's main core).
using ScenarioPair = sim::ScenarioResults;

inline ScenarioPair evaluateBoth(const std::string& name, const std::string& source,
                                 const platform::Platform& pf,
                                 const sim::EvalOptions& options = {}) {
  return sim::evaluateBenchmarkAllScenarios(name, source, pf, options);
}

/// Flags shared by the bench binaries.
struct BenchArgs {
  std::vector<benchsuite::Benchmark> benchmarks;  ///< empty filter = full suite
  int jobs = 1;  ///< Parallelizer solver threads (0 = hardware concurrency)
};

/// Parses `--benchmarks a,b,c` / `--benchmarks=a,b,c` (comma-separated
/// either way) and `--jobs N` / `--jobs=N`. Unknown flags and stray
/// positionals are usage errors: benchmark typos must not silently fall
/// back to the full multi-minute suite.
inline BenchArgs parseBenchArgs(int argc, char** argv) {
  auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", argv[0], message.c_str());
    std::fprintf(stderr, "usage: %s [--benchmarks a,b,c] [--jobs N]\n", argv[0]);
    std::exit(1);
  };
  BenchArgs args;
  std::string filter;
  std::string jobsText;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmarks=", 0) == 0) {
      filter = arg.substr(13);
    } else if (arg == "--benchmarks") {
      if (i + 1 >= argc) fail("--benchmarks expects a comma-separated list");
      filter = argv[++i];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobsText = arg.substr(7);
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) fail("--jobs expects a non-negative integer");
      jobsText = argv[++i];
    } else {
      fail("unknown argument '" + arg + "'");
    }
  }
  if (!jobsText.empty()) {
    char* end = nullptr;
    const long jobs = std::strtol(jobsText.c_str(), &end, 10);
    if (end == jobsText.c_str() || *end != '\0' || jobs < 0)
      fail("--jobs expects a non-negative integer, got '" + jobsText + "'");
    args.jobs = static_cast<int>(jobs);
  }
  if (filter.empty()) {
    args.benchmarks = benchsuite::suite();
  } else {
    for (const std::string& name : strings::split(filter, ',')) {
      const std::string trimmed{strings::trim(name)};
      try {
        args.benchmarks.push_back(benchsuite::find(trimmed));
      } catch (const Error&) {
        fail("unknown benchmark '" + trimmed + "'");
      }
    }
  }
  return args;
}

/// Parses `--benchmarks a,b,c` style filters; empty = full suite.
inline std::vector<benchsuite::Benchmark> selectBenchmarks(int argc, char** argv) {
  return parseBenchArgs(argc, argv).benchmarks;
}

inline void printScenarioTable(const char* title, double limit,
                               const std::vector<std::string>& names,
                               const std::vector<double>& homog,
                               const std::vector<double>& hetero) {
  std::printf("\n%s (theoretical maximum speedup: %.1fx, dashed line)\n", title, limit);
  std::printf("%-14s %14s %16s\n", "benchmark", "homogeneous", "heterogeneous");
  std::printf("%-14s %14s %16s\n", "---------", "-----------", "-------------");
  double sumHom = 0.0;
  double sumHet = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("%-14s %13.2fx %15.2fx\n", names[i].c_str(), homog[i], hetero[i]);
    sumHom += homog[i];
    sumHet += hetero[i];
  }
  if (!names.empty()) {
    std::printf("%-14s %13.2fx %15.2fx\n", "average",
                sumHom / static_cast<double>(names.size()),
                sumHet / static_cast<double>(names.size()));
  }
}

}  // namespace hetpar::bench
