// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/sim/measure.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::bench {

/// Both scenarios for one benchmark on one platform. The heterogeneous
/// parallelization is platform-dependent but scenario-independent, so it
/// runs once; the homogeneous baseline re-plans per scenario (its uniform
/// platform view is derived from the scenario's main core).
using ScenarioPair = sim::ScenarioResults;

inline ScenarioPair evaluateBoth(const std::string& name, const std::string& source,
                                 const platform::Platform& pf,
                                 const sim::EvalOptions& options = {}) {
  return sim::evaluateBenchmarkAllScenarios(name, source, pf, options);
}

/// Parses `--benchmarks a,b,c` style filters; empty = full suite.
inline std::vector<benchsuite::Benchmark> selectBenchmarks(int argc, char** argv) {
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmarks=", 0) == 0) filter = arg.substr(13);
  }
  if (filter.empty()) return benchsuite::suite();
  std::vector<benchsuite::Benchmark> out;
  for (const std::string& name : strings::split(filter, ','))
    out.push_back(benchsuite::find(std::string(strings::trim(name))));
  return out;
}

inline void printScenarioTable(const char* title, double limit,
                               const std::vector<std::string>& names,
                               const std::vector<double>& homog,
                               const std::vector<double>& hetero) {
  std::printf("\n%s (theoretical maximum speedup: %.1fx, dashed line)\n", title, limit);
  std::printf("%-14s %14s %16s\n", "benchmark", "homogeneous", "heterogeneous");
  std::printf("%-14s %14s %16s\n", "---------", "-----------", "-------------");
  double sumHom = 0.0;
  double sumHet = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("%-14s %13.2fx %15.2fx\n", names[i].c_str(), homog[i], hetero[i]);
    sumHom += homog[i];
    sumHet += hetero[i];
  }
  if (!names.empty()) {
    std::printf("%-14s %13.2fx %15.2fx\n", "average",
                sumHom / static_cast<double>(names.size()),
                sumHet / static_cast<double>(names.size()));
  }
}

}  // namespace hetpar::bench
