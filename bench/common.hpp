// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/pipeline/evaluate.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::bench {

/// Both scenarios for one benchmark on one platform. The heterogeneous
/// parallelization is platform-dependent but scenario-independent, so it
/// runs once; the homogeneous baseline re-plans per scenario (its uniform
/// platform view is derived from the scenario's main core).
using ScenarioPair = pipeline::ScenarioResults;

inline ScenarioPair evaluateBoth(const std::string& name, const std::string& source,
                                 const platform::Platform& pf,
                                 const pipeline::EvalOptions& options = {}) {
  return pipeline::evaluateBenchmarkAllScenarios(name, source, pf, options);
}

/// Flags shared by the bench binaries.
struct BenchArgs {
  std::vector<benchsuite::Benchmark> benchmarks;  ///< empty filter = full suite
  int jobs = 1;  ///< Parallelizer solver threads (0 = hardware concurrency)
};

/// Parses `--benchmarks a,b,c` / `--benchmarks=a,b,c` (comma-separated
/// either way) and `--jobs N` / `--jobs=N`. Unknown flags and stray
/// positionals are usage errors: benchmark typos must not silently fall
/// back to the full multi-minute suite.
inline BenchArgs parseBenchArgs(int argc, char** argv) {
  auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", argv[0], message.c_str());
    std::fprintf(stderr, "usage: %s [--benchmarks a,b,c] [--jobs N]\n", argv[0]);
    std::exit(1);
  };
  BenchArgs args;
  std::string filter;
  std::string jobsText;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmarks=", 0) == 0) {
      filter = arg.substr(13);
    } else if (arg == "--benchmarks") {
      if (i + 1 >= argc) fail("--benchmarks expects a comma-separated list");
      filter = argv[++i];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobsText = arg.substr(7);
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) fail("--jobs expects a non-negative integer");
      jobsText = argv[++i];
    } else {
      fail("unknown argument '" + arg + "'");
    }
  }
  if (!jobsText.empty()) {
    char* end = nullptr;
    const long jobs = std::strtol(jobsText.c_str(), &end, 10);
    if (end == jobsText.c_str() || *end != '\0' || jobs < 0)
      fail("--jobs expects a non-negative integer, got '" + jobsText + "'");
    args.jobs = static_cast<int>(jobs);
  }
  if (filter.empty()) {
    args.benchmarks = benchsuite::suite();
  } else {
    for (const std::string& name : strings::split(filter, ',')) {
      const std::string trimmed{strings::trim(name)};
      try {
        args.benchmarks.push_back(benchsuite::find(trimmed));
      } catch (const Error&) {
        fail("unknown benchmark '" + trimmed + "'");
      }
    }
  }
  return args;
}

/// Parses `--benchmarks a,b,c` style filters; empty = full suite.
inline std::vector<benchsuite::Benchmark> selectBenchmarks(int argc, char** argv) {
  return parseBenchArgs(argc, argv).benchmarks;
}

/// BENCH_parallelizer.json records the repo's perf trajectory as one JSON
/// object per bench binary, keyed by bench name:
///
///   { "speedup_jobs": {...}, "pipeline_batch": {...} }
///
/// Each binary rewrites only its own section via updateBenchJson, so running
/// one bench never clobbers another's recorded numbers. The splitter below
/// is a minimal top-level-object scanner (strings and nesting respected),
/// not a general JSON parser — enough to round-trip what the binaries emit.
/// A legacy file whose top level IS one bench record (`"bench": "<name>"`)
/// is migrated into that bench's section on first update.
inline std::map<std::string, std::string> readBenchSections(const std::string& path) {
  std::map<std::string, std::string> sections;
  std::ifstream in(path);
  if (!in.good()) return sections;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::size_t open = text.find('{');
  if (open == std::string::npos) return sections;
  std::size_t i = open + 1;
  auto skipSpace = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  auto readString = [&]() -> std::string {
    std::string out;
    ++i;  // opening quote
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) out += text[i++];
      out += text[i++];
    }
    ++i;  // closing quote
    return out;
  };
  while (true) {
    skipSpace();
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] == ',') { ++i; continue; }
    if (text[i] != '"') break;  // malformed: keep what we have
    const std::string key = readString();
    skipSpace();
    if (i >= text.size() || text[i] != ':') break;
    ++i;
    skipSpace();
    const std::size_t valueStart = i;
    int depth = 0;
    bool inString = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (inString) {
        if (c == '\\') ++i;
        else if (c == '"') inString = false;
      } else if (c == '"') {
        inString = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // closing the top-level object
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    std::string value = text.substr(valueStart, i - valueStart);
    while (!value.empty() && std::isspace(static_cast<unsigned char>(value.back())))
      value.pop_back();
    sections[key] = std::move(value);
  }

  // Legacy single-record layout: {"bench": "name", ...} -> one section.
  const auto legacy = sections.find("bench");
  if (legacy != sections.end() && legacy->second.size() >= 2 &&
      legacy->second.front() == '"') {
    const std::string name = legacy->second.substr(1, legacy->second.size() - 2);
    std::string whole{strings::trim(text)};
    std::map<std::string, std::string> migrated;
    migrated[name] = std::move(whole);
    return migrated;
  }
  return sections;
}

/// Replaces (or adds) one bench's section and rewrites `path`. `body` must
/// be a complete JSON value, normally an object.
inline void updateBenchJson(const std::string& path, const std::string& name,
                            const std::string& body) {
  std::map<std::string, std::string> sections = readBenchSections(path);
  sections[name] = body;
  std::ofstream out(path);
  if (!out.good()) throw Error("cannot write " + path);
  out << "{\n";
  std::size_t n = 0;
  for (const auto& [key, value] : sections) {
    out << "  \"" << key << "\": " << value;
    out << (++n < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

inline void printScenarioTable(const char* title, double limit,
                               const std::vector<std::string>& names,
                               const std::vector<double>& homog,
                               const std::vector<double>& hetero) {
  std::printf("\n%s (theoretical maximum speedup: %.1fx, dashed line)\n", title, limit);
  std::printf("%-14s %14s %16s\n", "benchmark", "homogeneous", "heterogeneous");
  std::printf("%-14s %14s %16s\n", "---------", "-----------", "-------------");
  double sumHom = 0.0;
  double sumHet = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("%-14s %13.2fx %15.2fx\n", names[i].c_str(), homog[i], hetero[i]);
    sumHom += homog[i];
    sumHet += hetero[i];
  }
  if (!names.empty()) {
    std::printf("%-14s %13.2fx %15.2fx\n", "average",
                sumHom / static_cast<double>(names.size()),
                sumHet / static_cast<double>(names.size()));
  }
}

}  // namespace hetpar::bench
