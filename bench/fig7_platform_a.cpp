// Reproduces paper Figure 7: speedups on platform configuration (A)
// (1x100 + 1x250 + 2x500 MHz ARM cores) for both evaluation scenarios,
// comparing the homogeneous baseline [6] against the heterogeneous tool.
//
//   Figure 7(a) -- Accelerator scenario: main processor = the 100 MHz core.
//   Figure 7(b) -- Slower-cores scenario: main processor = a 500 MHz core.
//
// Expected shape (paper Section VI-A): homogeneous reaches ~3-4x in (a) and
// drops below 1x in (b); heterogeneous reaches up to 11-12x in (a), stays
// in 1.2-2.5x in (b), and never regresses below 1x.
#include "common.hpp"

#include "hetpar/platform/presets.hpp"

int main(int argc, char** argv) {
  using namespace hetpar;
  const platform::Platform pf = platform::platformA();
  const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
  pipeline::EvalOptions evalOptions;
  evalOptions.parallelizer.jobs = args.jobs;

  std::vector<std::string> names;
  std::vector<double> homA, hetA, homB, hetB;
  double limitA = 0.0;
  double limitB = 0.0;

  std::printf("Platform configuration (A): %s\n", pf.summary().c_str());
  for (const auto& b : args.benchmarks) {
    std::fprintf(stderr, "[fig7] evaluating %s ...\n", b.name.c_str());
    const bench::ScenarioPair pair = bench::evaluateBoth(b.name, b.source, pf, evalOptions);
    names.push_back(b.name);
    homA.push_back(pair.accelerator.homogeneousSpeedup);
    hetA.push_back(pair.accelerator.heterogeneousSpeedup);
    homB.push_back(pair.slowerCores.homogeneousSpeedup);
    hetB.push_back(pair.slowerCores.heterogeneousSpeedup);
    limitA = pair.accelerator.theoreticalLimit;
    limitB = pair.slowerCores.theoreticalLimit;
  }

  bench::printScenarioTable("Figure 7(a): Accelerator Scenario, platform (A)", limitA, names,
                            homA, hetA);
  bench::printScenarioTable("Figure 7(b): Slower Cores Scenario, platform (A)", limitB, names,
                            homB, hetB);
  return 0;
}
