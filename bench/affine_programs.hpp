// The affine-dependence example pair: a domain-decomposed 1-D stencil and a
// quadrant-blocked matmul. Both are built so the *name-based* dependence
// test chains their kernels into one serial spine (every kernel reads and
// writes the same array name) while the *affine* section test proves the
// kernels touch disjoint sections and prunes every edge between them. The
// kernels themselves are deliberately serial loops (recurrences /
// k-outer blocking), so task-level parallelism between kernels is the only
// speedup lever — exactly the precision the affine mode adds.
//
// Shared between the bench table (bench/affine_deps.cpp) and the
// integration test (tests/integration/affine_examples_test.cpp) so the
// acceptance numbers and the regression guard describe the same programs.
#pragma once

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::bench {

/// Gauss-Seidel-style in-place heat dissipation, decomposed into two
/// independent half-domains with a one-cell buffer gap at index 2048.
/// Each sweep is a serial recurrence (reads cell[i-1] it just wrote);
/// the two sweeps' read/write sections are disjoint.
inline constexpr const char* kStencilName = "stencil-halves";
inline constexpr const char* kStencilSource = R"(
double cell[4096];
int main() {
  for (int i = 0; i < 4096; i = i + 1) { cell[i] = i * 0.25; }
  for (int i = 1; i < 2048; i = i + 1) {
    cell[i] = (cell[i - 1] + cell[i] + cell[i + 1]) * 0.333;
  }
  for (int i = 2049; i < 4095; i = i + 1) {
    cell[i] = (cell[i - 1] + cell[i] + cell[i + 1]) * 0.333;
  }
  double heat = 0.0;
  for (int i = 0; i < 4096; i = i + 1) { heat = heat + cell[i]; }
  return heat;
}
)";

/// 16x16 matmul computed as four 8x8 output quadrants, each with the
/// cache-classic k-outer (ikj) ordering. k-outer makes every quadrant nest
/// serial to the loop analysis (c is written without the outer IV in any
/// subscript); the four quadrants write disjoint sections of c.
inline constexpr const char* kMatmulName = "blocked-matmul";
inline constexpr const char* kMatmulSource = R"(
double a[16][16];
double b[16][16];
double c[16][16];
int main() {
  for (int i = 0; i < 16; i = i + 1) {
    for (int j = 0; j < 16; j = j + 1) {
      a[i][j] = i + j * 0.5;
      b[i][j] = i - j * 0.25;
      c[i][j] = 0.0;
    }
  }
  for (int k = 0; k < 16; k = k + 1) {
    for (int i = 0; i < 8; i = i + 1) {
      for (int j = 0; j < 8; j = j + 1) { c[i][j] = c[i][j] + a[i][k] * b[k][j]; }
    }
  }
  for (int k = 0; k < 16; k = k + 1) {
    for (int i = 0; i < 8; i = i + 1) {
      for (int j = 8; j < 16; j = j + 1) { c[i][j] = c[i][j] + a[i][k] * b[k][j]; }
    }
  }
  for (int k = 0; k < 16; k = k + 1) {
    for (int i = 8; i < 16; i = i + 1) {
      for (int j = 0; j < 8; j = j + 1) { c[i][j] = c[i][j] + a[i][k] * b[k][j]; }
    }
  }
  for (int k = 0; k < 16; k = k + 1) {
    for (int i = 8; i < 16; i = i + 1) {
      for (int j = 8; j < 16; j = j + 1) { c[i][j] = c[i][j] + a[i][k] * b[k][j]; }
    }
  }
  double check = 0.0;
  for (int i = 0; i < 16; i = i + 1) {
    for (int j = 0; j < 16; j = j + 1) { check = check + c[i][j]; }
  }
  return check;
}
)";

/// Whole-graph dependence totals: every region's edge count and flow/comm
/// payload bytes (anti/output edges carry 0 bytes by construction).
struct DepTotals {
  int edges = 0;
  long long bytes = 0;
};

inline DepTotals depTotals(const htg::Graph& g) {
  DepTotals t;
  for (htg::NodeId id = 0; id < static_cast<htg::NodeId>(g.size()); ++id) {
    const htg::Node& n = g.node(id);
    if (!n.isHierarchical()) continue;
    t.edges += static_cast<int>(n.edges.size());
    for (const htg::Edge& e : n.edges) t.bytes += e.bytes;
  }
  return t;
}

/// The ILP's own speedup estimate for the whole program with the main task
/// on `mainClass`: the root region's sequential candidate time over its
/// best candidate time. This is the objective the dependence precision
/// feeds — the simulator adds bus-contention effects on top.
inline double ilpEstimatedSpeedup(const char* source, const platform::Platform& pf,
                                  platform::ClassId mainClass, ir::DependenceMode mode) {
  const htg::FrontendBundle bundle = htg::buildFromSource(source, mode);
  const cost::TimingModel timing(pf);
  parallel::ParallelizerOptions options;
  options.dependenceMode = mode;
  parallel::Parallelizer tool(bundle.graph, timing, options);
  const parallel::ParallelizeOutcome outcome = tool.run();
  const parallel::SolutionRef best = outcome.bestRoot(bundle.graph, mainClass);
  const auto& rootSet = outcome.table.at(bundle.graph.root());
  return rootSet.at(rootSet.sequentialFor(mainClass)).timeSeconds /
         rootSet.at(best.index).timeSeconds;
}

}  // namespace hetpar::bench
