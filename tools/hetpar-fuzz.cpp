// hetpar-fuzz — differential fuzzer for the parallelization pipeline.
//
//   hetpar-fuzz [options]
//
//   --seed <n>            base seed (default 1); every reported failure is
//                         replayable from its case seed alone
//   --iterations <n>      fuzz cases to run (default 100)
//   --time-budget <sec>   stop early after this much wall time (default: none)
//   --relations <list>    comma-separated relation names, or "all" (default);
//                         cases round-robin over the enabled relations
//   --regression-dir <d>  where shrunk failing inputs are dumped
//                         (default tests/data/regressions; "" disables dumps)
//   --report <file>       also write the JSON report to a file
//   --list-relations      print the relation names and exit
//   --inject-liveness-bug enable the deliberate liveness fault (partial array
//                         writes treated as kills); the liveness-soundness
//                         relation must then fail fast (falsifiability check)
//
// Exit codes: 0 all cases passed, 1 usage error, 2 at least one failure.
//
// Failing program-level cases are delta-debugged down to a chunk-minimal
// program before being dumped as <relation>-seed<case>.c plus a matching
// .platform file, ready to be committed as a regression fixture (the
// verify_regressions test replays everything in the directory).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/ir/dataflow.hpp"
#include "hetpar/pipeline/pass.hpp"
#include "hetpar/platform/parser.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"
#include "hetpar/verify/generator.hpp"
#include "hetpar/verify/metamorphic.hpp"
#include "hetpar/verify/reduce.hpp"

namespace {

using namespace hetpar;

struct Options {
  std::uint64_t seed = 1;
  int iterations = 100;
  double timeBudgetSeconds = 0.0;  // 0 = unlimited
  std::string relations = "all";
  std::string regressionDir = "tests/data/regressions";
  std::string reportPath;
  bool injectLivenessBug = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: hetpar-fuzz [--seed n] [--iterations n] [--time-budget sec]\n"
               "                   [--relations list|all] [--regression-dir d]\n"
               "                   [--report file] [--list-relations]\n"
               "                   [--inject-liveness-bug]\n");
}

struct CaseOutcome {
  std::uint64_t caseSeed = 0;
  verify::RelationResult result;
  std::string regressionFile;  // non-empty when a shrunk repro was dumped
};

/// Case seeds are decorrelated from consecutive base seeds (splitmix64).
std::uint64_t caseSeedFor(std::uint64_t base, int iteration) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(iteration + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strings::format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

/// Runs one relation, mapping any pipeline exception to a failure (a crash
/// on a valid-by-construction input is a bug by definition).
verify::RelationResult runCase(verify::Relation relation, std::uint64_t caseSeed,
                               const std::string& source, const platform::Platform& pf,
                               const verify::MetamorphicOptions& options) {
  try {
    if (verify::isProgramRelation(relation))
      return verify::checkProgramRelation(relation, source, pf, options);
    return verify::checkRegionRelation(relation, caseSeed, options);
  } catch (const std::exception& e) {
    verify::RelationResult r;
    r.relation = relation;
    r.name = verify::relationName(relation);
    r.passed = false;
    r.detail = std::string("exception: ") + e.what();
    return r;
  }
}

/// Shrinks a failing program-level case and dumps source + platform into the
/// regression directory. Returns the dumped source path ("" on failure).
std::string dumpRegression(const Options& opts, verify::Relation relation,
                           std::uint64_t caseSeed, const verify::GeneratedProgram& program,
                           const platform::Platform& pf,
                           const verify::MetamorphicOptions& mopts, int* probes) {
  const verify::FailurePredicate stillFailing = [&](const verify::GeneratedProgram& p) {
    const verify::RelationResult r = runCase(relation, caseSeed, p.render(), pf, mopts);
    return !r.passed;
  };
  verify::GeneratedProgram shrunk = program;
  try {
    verify::ReduceResult reduced = verify::reduceProgram(program, stillFailing);
    shrunk = std::move(reduced.program);
    if (probes != nullptr) *probes = reduced.probes;
  } catch (const std::exception&) {
    // Flaky failure (did not reproduce under the shrinker): dump unshrunk.
  }

  std::error_code ec;
  std::filesystem::create_directories(opts.regressionDir, ec);
  const std::string stem = strings::format(
      "%s-seed%llu", verify::relationName(relation).c_str(),
      static_cast<unsigned long long>(caseSeed));
  const std::string sourcePath = opts.regressionDir + "/" + stem + ".c";
  {
    std::ofstream out(sourcePath);
    if (!out) return "";
    out << "// hetpar-fuzz regression: relation " << verify::relationName(relation)
        << ", case seed " << caseSeed << "\n";
    out << shrunk.render();
  }
  {
    std::ofstream out(opts.regressionDir + "/" + stem + ".platform");
    out << platform::toText(pf);
  }
  return sourcePath;
}

/// Region-level relations have no program to shrink — the case seed IS the
/// repro. Dumps <relation>-seed<N>.seed so verify_regressions replays it.
std::string dumpSeedRegression(const Options& opts, verify::Relation relation,
                               std::uint64_t caseSeed) {
  std::error_code ec;
  std::filesystem::create_directories(opts.regressionDir, ec);
  const std::string path = opts.regressionDir + "/" +
                           strings::format("%s-seed%llu.seed",
                                           verify::relationName(relation).c_str(),
                                           static_cast<unsigned long long>(caseSeed));
  std::ofstream out(path);
  if (!out) return "";
  out << "# hetpar-fuzz region-level regression: relation "
      << verify::relationName(relation) << "\n"
      << caseSeed << "\n";
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      opts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--iterations") {
      opts.iterations = std::atoi(value());
    } else if (arg == "--time-budget") {
      opts.timeBudgetSeconds = std::atof(value());
    } else if (arg == "--relations") {
      opts.relations = value();
    } else if (arg == "--regression-dir") {
      opts.regressionDir = value();
    } else if (arg == "--report") {
      opts.reportPath = value();
    } else if (arg == "--inject-liveness-bug") {
      opts.injectLivenessBug = true;
    } else if (arg == "--list-relations") {
      for (verify::Relation r : verify::allRelations())
        std::printf("%s\n", verify::relationName(r).c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 1;
    }
  }

  if (opts.injectLivenessBug) ir::DataflowAnalysis::testTreatPartialArrayWritesAsKills() = true;

  std::vector<verify::Relation> relations;
  try {
    relations = verify::parseRelations(opts.relations);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const verify::MetamorphicOptions mopts;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  std::vector<CaseOutcome> outcomes;
  int failures = 0, skips = 0, ran = 0;
  for (int iter = 0; iter < opts.iterations; ++iter) {
    if (opts.timeBudgetSeconds > 0 && elapsed() > opts.timeBudgetSeconds) break;
    const verify::Relation relation =
        relations[static_cast<std::size_t>(iter) % relations.size()];
    const std::uint64_t caseSeed = caseSeedFor(opts.seed, iter);

    CaseOutcome outcome;
    outcome.caseSeed = caseSeed;
    if (verify::isProgramRelation(relation)) {
      // Vary the array extent across cases: small arrays keep every region
      // below the granularity threshold (sequential-only tables), large ones
      // push loops into chunking territory.
      static constexpr int kSizes[] = {32, 64, 128, 256, 512};
      verify::GeneratorOptions genOptions;
      genOptions.arraySize = kSizes[caseSeed % 5];
      const verify::GeneratedProgram program = verify::generateProgram(caseSeed, genOptions);
      const platform::Platform pf = verify::generatePlatform(caseSeed);
      outcome.result = runCase(relation, caseSeed, program.render(), pf, mopts);
      if (!outcome.result.passed && !opts.regressionDir.empty()) {
        int probes = 0;
        outcome.regressionFile =
            dumpRegression(opts, relation, caseSeed, program, pf, mopts, &probes);
        std::fprintf(stderr, "  shrunk with %d probes -> %s\n", probes,
                     outcome.regressionFile.c_str());
      }
    } else {
      outcome.result = runCase(relation, caseSeed, "", platform::Platform(), mopts);
      if (!outcome.result.passed && !opts.regressionDir.empty())
        outcome.regressionFile = dumpSeedRegression(opts, relation, caseSeed);
    }

    ++ran;
    if (!outcome.result.passed) {
      ++failures;
      std::fprintf(stderr, "FAIL %s seed=%llu: %s\n", outcome.result.name.c_str(),
                   static_cast<unsigned long long>(caseSeed),
                   outcome.result.detail.c_str());
    } else if (outcome.result.skipped) {
      ++skips;
    }
    outcomes.push_back(std::move(outcome));
  }

  std::string json = "{\n";
  json += strings::format("  \"baseSeed\": %llu,\n",
                          static_cast<unsigned long long>(opts.seed));
  json += strings::format("  \"cases\": %d,\n  \"failures\": %d,\n  \"skipped\": %d,\n",
                          ran, failures, skips);
  json += strings::format("  \"wallSeconds\": %.3f,\n", elapsed());
  // Per-pass totals across every pipeline run the cases performed (the
  // verify harness drives the same staged pipeline as hetparc).
  json += "  \"passTimings\": {\n";
  {
    const std::map<std::string, pipeline::PassTotals> totals =
        pipeline::TimingRegistry::global().snapshot();
    std::size_t k = 0;
    for (const auto& [name, t] : totals) {
      json += strings::format(
          "    \"%s\": {\"runs\": %lld, \"wallSeconds\": %.3f, \"artifactBytes\": %lld, "
          "\"cacheHits\": %lld, \"cacheMisses\": %lld}%s\n",
          name.c_str(), t.runs, t.wallSeconds, t.artifactBytes, t.cacheHits,
          t.cacheMisses, ++k < totals.size() ? "," : "");
    }
  }
  json += "  },\n";
  // Process-wide LP-engine totals across every branch-and-bound solve the
  // cases performed (both engines when the differential relation ran).
  {
    const ilp::SolverTotals t = ilp::solverTotals();
    json += "  \"simplex\": {\n";
    json += strings::format(
        "    \"solves\": %lld, \"bnbNodes\": %lld, \"iterations\": %lld,\n"
        "    \"iterationsPerSecond\": %.0f, \"refactorizations\": %lld,\n"
        "    \"etaUpdates\": %lld, \"peakFillNonzeros\": %lld, \"wallSeconds\": %.3f\n",
        t.solves, t.bnbNodes, t.simplexIterations,
        t.wallSeconds > 0 ? static_cast<double>(t.simplexIterations) / t.wallSeconds : 0.0,
        t.refactorizations, t.etaUpdates, t.peakFillNonzeros, t.wallSeconds);
    json += "  },\n";
  }
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const CaseOutcome& o = outcomes[i];
    json += strings::format(
        "    {\"relation\": \"%s\", \"seed\": %llu, \"passed\": %s, \"skipped\": %s",
        o.result.name.c_str(), static_cast<unsigned long long>(o.caseSeed),
        o.result.passed ? "true" : "false", o.result.skipped ? "true" : "false");
    if (!o.result.detail.empty())
      json += ", \"detail\": \"" + jsonEscape(o.result.detail) + "\"";
    if (!o.regressionFile.empty())
      json += ", \"regression\": \"" + jsonEscape(o.regressionFile) + "\"";
    json += i + 1 < outcomes.size() ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (!opts.reportPath.empty()) {
    std::ofstream out(opts.reportPath);
    out << json;
  }
  std::fprintf(stderr, "%d cases, %d failures, %d skipped in %.1fs\n", ran, failures,
               skips, elapsed());
  return failures == 0 ? 0 : 2;
}
