// hetparc — command-line driver for the hetpar tool flow.
//
//   hetparc [options] <source.c>
//   hetparc [options] --batch <dir>
//   hetparc [options] --programs <a.c> <b.c> ...
//
//   --preset A|B            builtin evaluation platform (default: A)
//   --platform <file>       platform description file (overrides --preset)
//   --main-class <name>     processor class running the main task
//                           (default: the slowest class)
//   --emit-annotated <f>    write the pragma-annotated source
//   --emit-parspec <f>      write the MPA-style parallel specification
//   --emit-premap <f>       write the task-to-class pre-mapping
//   --emit-dot <f>          write the HTG as Graphviz (in affine mode the
//                           pruned conservative edges are overlaid in grey)
//   --dep-mode <m>          dependence analysis mode: conservative (default,
//                           whole-object name matching) or affine
//                           (array-section refinement)
//   --flow-mode <m>         communication payload mode: conservative
//                           (default, historical byte-identical output) or
//                           live (liveness-pruned CommIn/CommOut payloads,
//                           constprop-sharpened trip counts)
//   --diagnose              print dataflow lint findings (uninitialized
//                           reads, dead stores, write-only variables) as
//                           `file:line:col: warning: ...` lines
//   --dump-live             print per-statement live-after / upward-exposed
//                           variable sets (runs the dataflow pass)
//   --dump-deps             print every region's dependence edges (kind,
//                           variables, sections, payload bytes)
//   --simulate              simulate sequential vs parallel on the MPSoC
//   --baseline              also run the heterogeneity-oblivious baseline [6]
//   --stats                 print ILP statistics (Table I columns)
//   --seq-only              stop after HTG extraction (no ILPs)
//   --jobs <n>              solver threads; in batch mode, concurrent
//                           programs (0 = all hardware threads; default 1;
//                           the outcome is identical for any n)
//   --solver <engine>       LP engine: revised (default; sparse LU with eta
//                           updates) or dense (the explicit-inverse oracle,
//                           kept for differential checks)
//   --batch <dir>           compile every *.c file under <dir> (sorted)
//   --programs <f>...       compile the listed files (all later positional
//                           arguments are inputs)
//   --cache-dir <dir>       persistent artifact cache for parallelization
//                           outcomes, shared across runs and processes
//   --explain-timings       print per-pass wall times, artifact sizes and
//                           cache counters (to stderr)
//
// Exit codes: 0 success, 1 usage error, 2 input error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/parallel/region_cache.hpp"
#include "hetpar/pipeline/batch.hpp"
#include "hetpar/pipeline/session.hpp"
#include "hetpar/platform/parser.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/mpsoc.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace {

struct Options {
  std::string sourcePath;
  std::vector<std::string> programPaths;  ///< --programs / --batch inputs
  std::string batchDir;
  std::string preset = "A";
  std::string platformPath;
  std::string mainClassName;
  std::string emitAnnotated;
  std::string emitParspec;
  std::string emitPremap;
  std::string emitDot;
  std::string depMode = "conservative";
  std::string flowMode = "conservative";
  std::string solver = "revised";
  std::string cacheDir;
  bool diagnose = false;
  bool dumpLive = false;
  bool dumpDeps = false;
  bool simulate = false;
  bool baseline = false;
  bool stats = false;
  bool seqOnly = false;
  bool explainTimings = false;
  bool programsMode = false;
  int jobs = 1;
};

void usage() {
  std::fprintf(stderr,
               "usage: hetparc [options] <source.c>\n"
               "       hetparc [options] --batch <dir> | --programs <f>...\n"
               "  --preset A|B  --platform <file>  --main-class <name>\n"
               "  --emit-annotated <f>  --emit-parspec <f>  --emit-premap <f>  --emit-dot <f>\n"
               "  --dep-mode conservative|affine  --flow-mode conservative|live\n"
               "  --diagnose  --dump-live  --dump-deps\n"
               "  --simulate  --baseline  --stats  --seq-only  --jobs <n>\n"
               "  --solver revised|dense\n"
               "  --batch <dir>  --programs <f>...  --cache-dir <dir>  --explain-timings\n");
}

bool parseArgs(int argc, char** argv, Options& opts) {
  auto needValue = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--preset") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.preset = value;
    } else if (arg == "--platform") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.platformPath = value;
    } else if (arg == "--main-class") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.mainClassName = value;
    } else if (arg == "--emit-annotated") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitAnnotated = value;
    } else if (arg == "--emit-parspec") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitParspec = value;
    } else if (arg == "--emit-premap") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitPremap = value;
    } else if (arg == "--emit-dot") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitDot = value;
    } else if (arg == "--dep-mode") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.depMode = value;
      if (opts.depMode != "conservative" && opts.depMode != "affine") {
        std::fprintf(stderr, "hetparc: --dep-mode expects 'conservative' or 'affine'\n");
        return false;
      }
    } else if (arg == "--flow-mode") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.flowMode = value;
      if (opts.flowMode != "conservative" && opts.flowMode != "live") {
        std::fprintf(stderr, "hetparc: --flow-mode expects 'conservative' or 'live'\n");
        return false;
      }
    } else if (arg == "--solver") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.solver = value;
      if (opts.solver != "revised" && opts.solver != "dense") {
        std::fprintf(stderr, "hetparc: --solver expects 'revised' or 'dense'\n");
        return false;
      }
    } else if (arg == "--diagnose") {
      opts.diagnose = true;
    } else if (arg == "--dump-live") {
      opts.dumpLive = true;
    } else if (arg == "--dump-deps") {
      opts.dumpDeps = true;
    } else if (arg == "--simulate") {
      opts.simulate = true;
    } else if (arg == "--baseline") {
      opts.baseline = true;
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--seq-only") {
      opts.seqOnly = true;
    } else if (arg == "--explain-timings") {
      opts.explainTimings = true;
    } else if (arg == "--batch") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.batchDir = value;
    } else if (arg == "--programs") {
      opts.programsMode = true;
    } else if (arg == "--cache-dir") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.cacheDir = value;
    } else if (arg == "--jobs") {
      if ((value = needValue(i)) == nullptr) return false;
      char* end = nullptr;
      opts.jobs = static_cast<int>(std::strtol(value, &end, 10));
      if (end == value || *end != '\0' || opts.jobs < 0) {
        std::fprintf(stderr, "hetparc: --jobs expects a non-negative integer\n");
        return false;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hetparc: unknown option '%s'\n", arg.c_str());
      return false;
    } else if (opts.programsMode) {
      opts.programPaths.push_back(arg);
    } else if (opts.sourcePath.empty()) {
      opts.sourcePath = arg;
    } else {
      std::fprintf(stderr, "hetparc: more than one input file (use --programs)\n");
      return false;
    }
  }
  const bool batchMode = !opts.batchDir.empty() || opts.programsMode;
  if (batchMode && !opts.sourcePath.empty()) {
    std::fprintf(stderr, "hetparc: mixing a single input with --batch/--programs\n");
    return false;
  }
  if (opts.programsMode && opts.programPaths.empty()) {
    std::fprintf(stderr, "hetparc: --programs expects at least one file\n");
    return false;
  }
  return batchMode || !opts.sourcePath.empty();
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  hetpar::require(in.good(), "cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  hetpar::require(out.good(), "cannot write '" + path + "'");
  out << contents;
  std::fprintf(stderr, "hetparc: wrote %s\n", path.c_str());
}

/// The section an edge transports for one of its variables: the writer's
/// section for flow/output edges, the clobbered reader's for anti edges,
/// the consumer's for comm-in edges.
std::string edgeSection(const hetpar::htg::Graph& g, const hetpar::ir::SectionAnalysis& sa,
                        const hetpar::htg::Node& region, const hetpar::htg::Edge& e,
                        const std::string& v) {
  using hetpar::ir::DepKind;
  const hetpar::frontend::Stmt* stmt = nullptr;
  bool wantWrite = true;
  if (e.from == region.commIn) {
    stmt = g.node(e.to).stmt;
    wantWrite = false;  // inbound: what the consumer reads
  } else {
    stmt = g.node(e.from).stmt;
    wantWrite = e.kind != DepKind::Anti;  // anti: what the earlier reader read
  }
  if (stmt == nullptr) return "?";
  const hetpar::ir::AccessSummary& s = sa.of(*stmt);
  const auto& m = wantWrite ? s.writes : s.reads;
  const auto it = m.find(v);
  if (it == m.end()) return "?";
  return hetpar::ir::SectionAnalysis::toString(it->second.hull);
}

void dumpDeps(const hetpar::htg::FrontendBundle& bundle) {
  using namespace hetpar;
  const htg::Graph& g = bundle.graph;
  const ir::SectionAnalysis& sa = *bundle.sections;
  for (htg::NodeId id = 0; id < static_cast<htg::NodeId>(g.size()); ++id) {
    const htg::Node& n = g.node(id);
    if (!n.isHierarchical() || n.edges.empty()) continue;
    std::printf("region n%d (%s): %zu edges\n", id, n.label.c_str(), n.edges.size());
    for (const htg::Edge& e : n.edges) {
      const char* kind = e.kind == ir::DepKind::Flow     ? "flow"
                         : e.kind == ir::DepKind::Anti   ? "anti"
                                                         : "output";
      const std::string from =
          e.from == n.commIn ? "comm-in" : strings::format("n%d", e.from);
      const std::string to = e.to == n.commOut ? "comm-out" : strings::format("n%d", e.to);
      std::printf("  %-6s %s -> %s  %lldB ", kind, from.c_str(), to.c_str(), e.bytes);
      for (std::size_t i = 0; i < e.vars.size(); ++i)
        std::printf("%s%s=%s", i == 0 ? "" : ", ", e.vars[i].c_str(),
                    edgeSection(g, sa, n, e, e.vars[i]).c_str());
      std::printf("\n");
    }
  }
}

void printDiagnostics(const std::string& sourcePath,
                      const hetpar::ir::DataflowAnalysis& dfa) {
  using namespace hetpar;
  for (const ir::FlowDiagnostic& d : dfa.diagnostics()) {
    std::printf("%s:%d:%d: warning: %s [%s]", sourcePath.c_str(), d.loc.line, d.loc.column,
                ir::flowDiagnosticMessage(d).c_str(),
                ir::flowDiagnosticKindName(d.kind).c_str());
    if (!d.function.empty()) std::printf(" (function '%s')", d.function.c_str());
    std::printf("\n");
  }
  std::fprintf(stderr, "hetparc: %zu dataflow finding(s)\n", dfa.diagnostics().size());
}

void printLiveSets(const hetpar::frontend::Program& program,
                   const hetpar::ir::DataflowAnalysis& dfa) {
  using namespace hetpar;
  const auto joined = [](const std::set<std::string>& names) {
    std::string out;
    for (const std::string& n : names) {
      if (!out.empty()) out += ' ';
      out += n;
    }
    return out.empty() ? std::string("-") : out;
  };
  for (const auto& fn : program.functions) {
    std::printf("function %s:\n", fn->name.c_str());
    for (std::size_t i = 0; i < fn->body.size(); ++i) {
      const frontend::Stmt& s = *fn->body[i];
      std::printf("  stmt %zu (line %d): live-after {%s}  upward-exposed {%s}\n", i,
                  s.loc.line, joined(dfa.liveAfter(s)).c_str(),
                  joined(dfa.upwardExposed(s)).c_str());
    }
  }
}

hetpar::platform::Platform resolvePlatform(const Options& opts) {
  using namespace hetpar;
  return !opts.platformPath.empty() ? platform::parsePlatform(readFile(opts.platformPath))
         : opts.preset == "B"       ? platform::platformB()
                                    : platform::platformA();
}

hetpar::platform::ClassId resolveMainClass(const hetpar::platform::Platform& pf,
                                           const Options& opts) {
  using namespace hetpar;
  platform::ClassId mainClass = pf.slowestClass();
  if (!opts.mainClassName.empty()) {
    mainClass = pf.findClass(opts.mainClassName);
    require(mainClass >= 0, "platform has no class named '" + opts.mainClassName + "'");
  }
  return mainClass;
}

std::shared_ptr<hetpar::pipeline::ArtifactCache> openCache(const Options& opts) {
  if (opts.cacheDir.empty()) return nullptr;
  return std::make_shared<hetpar::pipeline::ArtifactCache>(opts.cacheDir);
}

void printTimings(const std::vector<hetpar::pipeline::PassRecord>& records) {
  std::fprintf(stderr, "%s", hetpar::pipeline::formatPassTable(records).c_str());
  const hetpar::ilp::SolverTotals t = hetpar::ilp::solverTotals();
  if (t.solves > 0) {
    std::fprintf(stderr,
                 "lp engine: %lld solves, %lld bnb nodes, %lld simplex iters "
                 "(%.0f iters/s), %lld refactorizations, %lld eta updates, "
                 "peak fill %lld nonzeros\n",
                 t.solves, t.bnbNodes, t.simplexIterations,
                 t.wallSeconds > 0 ? static_cast<double>(t.simplexIterations) / t.wallSeconds
                                   : 0.0,
                 t.refactorizations, t.etaUpdates, t.peakFillNonzeros);
  }
}

int runSingle(const Options& opts) {
  using namespace hetpar;
  const platform::Platform pf = resolvePlatform(opts);
  const platform::ClassId mainClass = resolveMainClass(pf, opts);

  std::fprintf(stderr, "hetparc: platform %s, main class %s\n", pf.summary().c_str(),
               pf.classAt(mainClass).name.c_str());

  const ir::DependenceMode depMode = opts.depMode == "affine"
                                         ? ir::DependenceMode::Affine
                                         : ir::DependenceMode::Conservative;
  const ir::FlowMode flowMode =
      opts.flowMode == "live" ? ir::FlowMode::Live : ir::FlowMode::Conservative;
  pipeline::SessionInputs inputs;
  inputs.name = opts.sourcePath;
  inputs.source = readFile(opts.sourcePath);
  inputs.platform = pf;
  inputs.depMode = depMode;
  inputs.flowMode = flowMode;
  inputs.parallelizer.jobs = opts.jobs;
  inputs.parallelizer.solverEngine = opts.solver == "dense"
                                         ? ilp::SolverEngine::Dense
                                         : ilp::SolverEngine::Revised;
  inputs.artifactCache = openCache(opts);
  pipeline::Session session(std::move(inputs));

  const htg::FrontendBundle& bundle = session.frontend();
  std::fprintf(stderr, "hetparc: HTG %zu nodes (%d hierarchical), %.0f profiled ops, "
                       "checksum %lld [%s deps]\n",
               bundle.graph.size(), bundle.graph.hierarchicalCount(),
               bundle.profile.totalOps, bundle.profile.exitValue, opts.depMode.c_str());
  std::unique_ptr<ir::DataflowAnalysis> localDfa;
  const ir::DataflowAnalysis* dfa = bundle.dataflow.get();
  if ((opts.diagnose || opts.dumpLive) && dfa == nullptr) {
    // Diagnostics without --flow-mode live: run the dataflow pass on the
    // side (it does not influence the graph in conservative mode).
    localDfa =
        std::make_unique<ir::DataflowAnalysis>(bundle.program, bundle.sema, *bundle.defuse);
    dfa = localDfa.get();
  }
  if (opts.diagnose) printDiagnostics(opts.sourcePath, *dfa);
  if (opts.dumpLive) printLiveSets(bundle.program, *dfa);
  if (opts.dumpDeps) dumpDeps(bundle);
  if (!opts.emitDot.empty()) writeFile(opts.emitDot, session.emitDot());
  if (opts.seqOnly) {
    if (opts.explainTimings) printTimings(session.passes());
    return 0;
  }

  const parallel::ParallelizeOutcome& outcome = session.parallelize();
  if (opts.stats)
    std::printf("heterogeneous ILP statistics: %s\n", outcome.stats.summary().c_str());

  const pipeline::Session::Estimates est = session.estimates(mainClass);
  std::printf("estimated: sequential %.3f ms, parallel %.3f ms (%.2fx, limit %.2fx)\n",
              est.sequentialSeconds * 1e3, est.parallelSeconds * 1e3,
              est.sequentialSeconds / est.parallelSeconds,
              pf.theoreticalMaxSpeedup(mainClass));

  if (!opts.emitAnnotated.empty())
    writeFile(opts.emitAnnotated, session.emitAnnotated(mainClass));
  if (!opts.emitParspec.empty())
    writeFile(opts.emitParspec, session.emitParspec(mainClass));
  if (!opts.emitPremap.empty())
    writeFile(opts.emitPremap, session.emitPremap(mainClass));

  if (opts.simulate) {
    const pipeline::Session::SimNumbers sim = session.simulate(mainClass);
    std::printf("simulated: sequential %.3f ms, parallel %.3f ms (%.2fx) over %zu tasks\n",
                sim.sequentialSeconds * 1e3, sim.parallelSeconds * 1e3,
                sim.sequentialSeconds / sim.parallelSeconds, sim.taskCount);

    if (opts.baseline) {
      parallel::ParallelizerOptions parOpts = session.inputs().parallelizer;
      parOpts.dependenceMode = depMode;
      parOpts.flowMode = flowMode;
      parallel::HomogeneousRun homog =
          parallel::runHomogeneousBaseline(bundle.graph, pf, mainClass, parOpts);
      if (opts.stats)
        std::printf("homogeneous ILP statistics:   %s\n", homog.outcome.stats.summary().c_str());
      sched::FlattenOptions fo;
      fo.classAwareAllocation = false;
      const int mainCore = pf.firstCoreOfClass(mainClass);
      const auto homFlat = sched::flatten(bundle.graph, homog.outcome.table,
                                          homog.outcome.bestRoot(bundle.graph, 0),
                                          session.timing(), mainCore, fo);
      const double hom = sim::simulate(homFlat.graph).makespanSeconds;
      std::printf("baseline [6]: parallel %.3f ms (%.2fx)\n", hom * 1e3,
                  sim.sequentialSeconds / hom);
    }
  }
  if (opts.explainTimings) printTimings(session.passes());
  return 0;
}

int runBatchMode(const Options& opts) {
  using namespace hetpar;
  std::vector<std::string> paths = opts.programPaths;
  if (!opts.batchDir.empty()) {
    namespace fs = std::filesystem;
    require(fs::is_directory(opts.batchDir), "'" + opts.batchDir + "' is not a directory");
    for (const fs::directory_entry& entry : fs::directory_iterator(opts.batchDir))
      if (entry.is_regular_file() && entry.path().extension() == ".c")
        paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
  }
  require(!paths.empty(), "no input programs (*.c) found");

  pipeline::BatchConfig config;
  config.platform = resolvePlatform(opts);
  config.mainClass = resolveMainClass(config.platform, opts);
  config.depMode = opts.depMode == "affine" ? ir::DependenceMode::Affine
                                            : ir::DependenceMode::Conservative;
  config.flowMode = opts.flowMode == "live" ? ir::FlowMode::Live
                                            : ir::FlowMode::Conservative;
  config.parallelizer.dependenceMode = config.depMode;
  config.parallelizer.flowMode = config.flowMode;
  config.parallelizer.solverEngine = opts.solver == "dense"
                                         ? ilp::SolverEngine::Dense
                                         : ilp::SolverEngine::Revised;
  config.simulate = opts.simulate;
  config.workers = opts.jobs;
  config.artifactCache = openCache(opts);
  if (config.parallelizer.enableRegionCache)
    config.regionCache = std::make_shared<parallel::IlpRegionCache>();

  std::fprintf(stderr, "hetparc: platform %s, main class %s, batch of %zu programs\n",
               config.platform.summary().c_str(),
               config.platform.classAt(config.mainClass).name.c_str(), paths.size());

  std::vector<pipeline::BatchJob> jobs;
  jobs.reserve(paths.size());
  for (const std::string& path : paths) jobs.push_back({path, readFile(path)});

  const pipeline::BatchReport report = pipeline::runBatch(jobs, config);

  // Merged output in submission order — bit-identical for any --jobs value.
  for (const pipeline::BatchJobResult& job : report.jobs) {
    std::printf("== %s ==\n", job.name.c_str());
    if (job.ok) {
      std::printf("%s", job.report.c_str());
    } else {
      std::fprintf(stderr, "hetparc: %s: error: %s\n", job.name.c_str(), job.error.c_str());
    }
  }

  if (config.artifactCache != nullptr) {
    const pipeline::ArtifactCacheStats cs = config.artifactCache->stats();
    std::fprintf(stderr,
                 "hetparc: artifact cache %llu hits, %llu misses "
                 "(%llu corrupt, %llu stale-version rejects)\n",
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.rejectedCorrupt),
                 static_cast<unsigned long long>(cs.rejectedVersion));
  }
  std::fprintf(stderr, "hetparc: batch done: %zu programs, %d failures, %.2f s\n",
               report.jobs.size(), report.failures, report.wallSeconds);
  if (opts.explainTimings) printTimings(report.allPasses());
  return report.failures == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetpar;
  Options opts;
  if (!parseArgs(argc, argv, opts)) {
    usage();
    return 1;
  }

  try {
    if (!opts.batchDir.empty() || opts.programsMode) return runBatchMode(opts);
    return runSingle(opts);
  } catch (const Error& e) {
    std::fprintf(stderr, "hetparc: error: %s\n", e.what());
    return 2;
  }
}
