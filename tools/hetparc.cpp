// hetparc — command-line driver for the hetpar tool flow.
//
//   hetparc [options] <source.c>
//
//   --preset A|B            builtin evaluation platform (default: A)
//   --platform <file>       platform description file (overrides --preset)
//   --main-class <name>     processor class running the main task
//                           (default: the slowest class)
//   --emit-annotated <f>    write the pragma-annotated source
//   --emit-parspec <f>      write the MPA-style parallel specification
//   --emit-premap <f>       write the task-to-class pre-mapping
//   --emit-dot <f>          write the HTG as Graphviz (in affine mode the
//                           pruned conservative edges are overlaid in grey)
//   --dep-mode <m>          dependence analysis mode: conservative (default,
//                           whole-object name matching) or affine
//                           (array-section refinement)
//   --dump-deps             print every region's dependence edges (kind,
//                           variables, sections, payload bytes)
//   --simulate              simulate sequential vs parallel on the MPSoC
//   --baseline              also run the heterogeneity-oblivious baseline [6]
//   --stats                 print ILP statistics (Table I columns)
//   --seq-only              stop after HTG extraction (no ILPs)
//   --jobs <n>              solver threads (0 = all hardware threads;
//                           default 1; the outcome is identical for any n)
//
// Exit codes: 0 success, 1 usage error, 2 input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "hetpar/codegen/annotate.hpp"
#include "hetpar/codegen/mpa_spec.hpp"
#include "hetpar/codegen/premap_spec.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/dot.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/parser.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/mpsoc.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace {

struct Options {
  std::string sourcePath;
  std::string preset = "A";
  std::string platformPath;
  std::string mainClassName;
  std::string emitAnnotated;
  std::string emitParspec;
  std::string emitPremap;
  std::string emitDot;
  std::string depMode = "conservative";
  bool dumpDeps = false;
  bool simulate = false;
  bool baseline = false;
  bool stats = false;
  bool seqOnly = false;
  int jobs = 1;
};

void usage() {
  std::fprintf(stderr,
               "usage: hetparc [options] <source.c>\n"
               "  --preset A|B  --platform <file>  --main-class <name>\n"
               "  --emit-annotated <f>  --emit-parspec <f>  --emit-premap <f>  --emit-dot <f>\n"
               "  --dep-mode conservative|affine  --dump-deps\n"
               "  --simulate  --baseline  --stats  --seq-only  --jobs <n>\n");
}

bool parseArgs(int argc, char** argv, Options& opts) {
  auto needValue = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--preset") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.preset = value;
    } else if (arg == "--platform") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.platformPath = value;
    } else if (arg == "--main-class") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.mainClassName = value;
    } else if (arg == "--emit-annotated") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitAnnotated = value;
    } else if (arg == "--emit-parspec") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitParspec = value;
    } else if (arg == "--emit-premap") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitPremap = value;
    } else if (arg == "--emit-dot") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.emitDot = value;
    } else if (arg == "--dep-mode") {
      if ((value = needValue(i)) == nullptr) return false;
      opts.depMode = value;
      if (opts.depMode != "conservative" && opts.depMode != "affine") {
        std::fprintf(stderr, "hetparc: --dep-mode expects 'conservative' or 'affine'\n");
        return false;
      }
    } else if (arg == "--dump-deps") {
      opts.dumpDeps = true;
    } else if (arg == "--simulate") {
      opts.simulate = true;
    } else if (arg == "--baseline") {
      opts.baseline = true;
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--seq-only") {
      opts.seqOnly = true;
    } else if (arg == "--jobs") {
      if ((value = needValue(i)) == nullptr) return false;
      char* end = nullptr;
      opts.jobs = static_cast<int>(std::strtol(value, &end, 10));
      if (end == value || *end != '\0' || opts.jobs < 0) {
        std::fprintf(stderr, "hetparc: --jobs expects a non-negative integer\n");
        return false;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hetparc: unknown option '%s'\n", arg.c_str());
      return false;
    } else if (opts.sourcePath.empty()) {
      opts.sourcePath = arg;
    } else {
      std::fprintf(stderr, "hetparc: more than one input file\n");
      return false;
    }
  }
  return !opts.sourcePath.empty();
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  hetpar::require(in.good(), "cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  hetpar::require(out.good(), "cannot write '" + path + "'");
  out << contents;
  std::fprintf(stderr, "hetparc: wrote %s\n", path.c_str());
}

/// The section an edge transports for one of its variables: the writer's
/// section for flow/output edges, the clobbered reader's for anti edges,
/// the consumer's for comm-in edges.
std::string edgeSection(const hetpar::htg::Graph& g, const hetpar::ir::SectionAnalysis& sa,
                        const hetpar::htg::Node& region, const hetpar::htg::Edge& e,
                        const std::string& v) {
  using hetpar::ir::DepKind;
  const hetpar::frontend::Stmt* stmt = nullptr;
  bool wantWrite = true;
  if (e.from == region.commIn) {
    stmt = g.node(e.to).stmt;
    wantWrite = false;  // inbound: what the consumer reads
  } else {
    stmt = g.node(e.from).stmt;
    wantWrite = e.kind != DepKind::Anti;  // anti: what the earlier reader read
  }
  if (stmt == nullptr) return "?";
  const hetpar::ir::AccessSummary& s = sa.of(*stmt);
  const auto& m = wantWrite ? s.writes : s.reads;
  const auto it = m.find(v);
  if (it == m.end()) return "?";
  return hetpar::ir::SectionAnalysis::toString(it->second.hull);
}

void dumpDeps(const hetpar::htg::FrontendBundle& bundle) {
  using namespace hetpar;
  const htg::Graph& g = bundle.graph;
  const ir::SectionAnalysis& sa = *bundle.sections;
  for (htg::NodeId id = 0; id < static_cast<htg::NodeId>(g.size()); ++id) {
    const htg::Node& n = g.node(id);
    if (!n.isHierarchical() || n.edges.empty()) continue;
    std::printf("region n%d (%s): %zu edges\n", id, n.label.c_str(), n.edges.size());
    for (const htg::Edge& e : n.edges) {
      const char* kind = e.kind == ir::DepKind::Flow     ? "flow"
                         : e.kind == ir::DepKind::Anti   ? "anti"
                                                         : "output";
      const std::string from =
          e.from == n.commIn ? "comm-in" : strings::format("n%d", e.from);
      const std::string to = e.to == n.commOut ? "comm-out" : strings::format("n%d", e.to);
      std::printf("  %-6s %s -> %s  %lldB ", kind, from.c_str(), to.c_str(), e.bytes);
      for (std::size_t i = 0; i < e.vars.size(); ++i)
        std::printf("%s%s=%s", i == 0 ? "" : ", ", e.vars[i].c_str(),
                    edgeSection(g, sa, n, e, e.vars[i]).c_str());
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetpar;
  Options opts;
  if (!parseArgs(argc, argv, opts)) {
    usage();
    return 1;
  }

  try {
    const platform::Platform pf =
        !opts.platformPath.empty() ? platform::parsePlatform(readFile(opts.platformPath))
        : opts.preset == "B"       ? platform::platformB()
                                   : platform::platformA();

    platform::ClassId mainClass = pf.slowestClass();
    if (!opts.mainClassName.empty()) {
      mainClass = pf.findClass(opts.mainClassName);
      require(mainClass >= 0, "platform has no class named '" + opts.mainClassName + "'");
    }

    std::fprintf(stderr, "hetparc: platform %s, main class %s\n", pf.summary().c_str(),
                 pf.classAt(mainClass).name.c_str());

    const ir::DependenceMode depMode = opts.depMode == "affine"
                                           ? ir::DependenceMode::Affine
                                           : ir::DependenceMode::Conservative;
    const std::string source = readFile(opts.sourcePath);
    htg::FrontendBundle bundle = htg::buildFromSource(source, depMode);
    htg::validateOrThrow(bundle.graph);
    std::fprintf(stderr, "hetparc: HTG %zu nodes (%d hierarchical), %.0f profiled ops, "
                         "checksum %lld [%s deps]\n",
                 bundle.graph.size(), bundle.graph.hierarchicalCount(),
                 bundle.profile.totalOps, bundle.profile.exitValue, opts.depMode.c_str());
    if (opts.dumpDeps) dumpDeps(bundle);
    if (!opts.emitDot.empty()) {
      if (depMode == ir::DependenceMode::Affine) {
        const htg::FrontendBundle cons =
            htg::buildFromSource(source, ir::DependenceMode::Conservative);
        writeFile(opts.emitDot, htg::toDotWithBaseline(bundle.graph, cons.graph));
      } else {
        writeFile(opts.emitDot, htg::toDot(bundle.graph));
      }
    }
    if (opts.seqOnly) return 0;

    const cost::TimingModel timing(pf);
    parallel::ParallelizerOptions parOpts;
    parOpts.jobs = opts.jobs;
    parOpts.dependenceMode = depMode;
    parallel::Parallelizer tool(bundle.graph, timing, parOpts);
    parallel::ParallelizeOutcome outcome = tool.run();
    if (opts.stats)
      std::printf("heterogeneous ILP statistics: %s\n", outcome.stats.summary().c_str());

    const parallel::SolutionRef best = outcome.bestRoot(bundle.graph, mainClass);
    const auto& rootSet = outcome.table.at(bundle.graph.root());
    const double estSeq = rootSet.at(rootSet.sequentialFor(mainClass)).timeSeconds;
    const double estPar = rootSet.at(best.index).timeSeconds;
    std::printf("estimated: sequential %.3f ms, parallel %.3f ms (%.2fx, limit %.2fx)\n",
                estSeq * 1e3, estPar * 1e3, estSeq / estPar,
                pf.theoreticalMaxSpeedup(mainClass));

    if (!opts.emitAnnotated.empty())
      writeFile(opts.emitAnnotated,
                codegen::annotateSource(bundle.program, bundle.graph, outcome.table, best, pf));
    if (!opts.emitParspec.empty())
      writeFile(opts.emitParspec, codegen::mpaSpec(bundle.graph, outcome.table, best));
    if (!opts.emitPremap.empty())
      writeFile(opts.emitPremap, codegen::premapSpec(bundle.graph, outcome.table, best, pf));

    if (opts.simulate) {
      const int mainCore = pf.firstCoreOfClass(mainClass);
      const double seq =
          sim::simulate(sched::flattenSequential(bundle.graph, timing, mainCore).graph)
              .makespanSeconds;
      const auto flat = sched::flatten(bundle.graph, outcome.table, best, timing, mainCore);
      const sim::SimReport rep = sim::simulate(flat.graph);
      std::printf("simulated: sequential %.3f ms, parallel %.3f ms (%.2fx) over %zu tasks\n",
                  seq * 1e3, rep.makespanSeconds * 1e3, seq / rep.makespanSeconds,
                  flat.graph.tasks.size());

      if (opts.baseline) {
        parallel::HomogeneousRun homog =
            parallel::runHomogeneousBaseline(bundle.graph, pf, mainClass, parOpts);
        if (opts.stats)
          std::printf("homogeneous ILP statistics:   %s\n", homog.outcome.stats.summary().c_str());
        sched::FlattenOptions fo;
        fo.classAwareAllocation = false;
        const auto homFlat = sched::flatten(bundle.graph, homog.outcome.table,
                                            homog.outcome.bestRoot(bundle.graph, 0), timing,
                                            mainCore, fo);
        const double hom = sim::simulate(homFlat.graph).makespanSeconds;
        std::printf("baseline [6]: parallel %.3f ms (%.2fx)\n", hom * 1e3, seq / hom);
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "hetparc: error: %s\n", e.what());
    return 2;
  }
}
