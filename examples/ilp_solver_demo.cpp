// Using hetpar's ILP substrate standalone: model a small facility-location
// problem with the same Model/Solver API the parallelizer uses.
//
// Decide which of 3 depots to open and how to serve 5 shops, minimizing
// opening + delivery costs — a classic MILP with the big-M pattern the
// ILPPAR model also relies on.
#include <cstdio>

#include "hetpar/ilp/branch_and_bound.hpp"

int main() {
  using namespace hetpar::ilp;

  const double open[3] = {60, 45, 80};
  const double delivery[3][5] = {
      {6, 7, 12, 9, 6},
      {11, 5, 7, 8, 10},
      {4, 10, 6, 5, 7},
  };

  Model m("facility_location");
  Var openVar[3];
  Var serve[3][5];
  for (int d = 0; d < 3; ++d) openVar[d] = m.addBool("open" + std::to_string(d));
  for (int d = 0; d < 3; ++d)
    for (int s = 0; s < 5; ++s)
      serve[d][s] = m.addBool("serve_" + std::to_string(d) + "_" + std::to_string(s));

  // Every shop is served exactly once; only open depots may serve.
  for (int s = 0; s < 5; ++s) {
    LinearExpr sum;
    for (int d = 0; d < 3; ++d) sum += LinearExpr(serve[d][s]);
    m.addEq(sum, 1.0, "shop" + std::to_string(s) + "_served");
  }
  for (int d = 0; d < 3; ++d)
    for (int s = 0; s < 5; ++s)
      m.addLe(LinearExpr(serve[d][s]), LinearExpr(openVar[d]));

  LinearExpr costExpr;
  for (int d = 0; d < 3; ++d) {
    costExpr += LinearExpr::term(open[d], openVar[d]);
    for (int s = 0; s < 5; ++s) costExpr += LinearExpr::term(delivery[d][s], serve[d][s]);
  }
  m.setObjective(costExpr, Sense::Minimize);

  std::printf("model: %zu variables (%zu integer), %zu constraints\n", m.numVars(),
              m.numIntegerVars(), m.numConstraints());

  BranchAndBoundSolver solver;
  const Solution sol = solver.solve(m);
  if (!sol.hasValues()) {
    std::printf("no solution found\n");
    return 1;
  }
  std::printf("status: %s, total cost %.1f\n",
              sol.status == SolveStatus::Optimal ? "proven optimal" : "feasible",
              sol.objective);
  for (int d = 0; d < 3; ++d) {
    if (!sol.boolean(openVar[d])) continue;
    std::printf("  depot %d open, serves:", d);
    for (int s = 0; s < 5; ++s)
      if (sol.boolean(serve[d][s])) std::printf(" shop%d", s);
    std::printf("\n");
  }
  const auto& stats = solver.lastStats();
  std::printf("solver: %lld branch-and-bound nodes, %lld simplex iterations, %.3fs\n",
              stats.nodesExplored, stats.simplexIterations, stats.wallSeconds);
  return 0;
}
