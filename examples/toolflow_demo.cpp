// Full tool-flow walkthrough (paper Figure 6) on the edge_detect benchmark:
//
//   sequential C  ->  HTG extraction  ->  ILP parallelization  ->
//   annotated source + MPA-style parallel spec + pre-mapping spec  ->
//   task-graph implementation  ->  MPSoC simulation
//
// Writes the intermediate artifacts next to the binary:
//   edge_detect.htg.dot        Graphviz dump of the hierarchical task graph
//   edge_detect.annotated.c    source with heterogeneous OpenMP-style pragmas
//   edge_detect.parspec        MPA-style parallel section specification
//   edge_detect.premap         task-to-processor-class pre-mapping
#include <cstdio>
#include <fstream>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/codegen/annotate.hpp"
#include "hetpar/codegen/mpa_spec.hpp"
#include "hetpar/codegen/premap_spec.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/dot.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/mpsoc.hpp"

namespace {

void writeFile(const char* path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
  std::printf("  wrote %s (%zu bytes)\n", path, contents.size());
}

}  // namespace

int main() {
  using namespace hetpar;
  const auto& bench = benchsuite::find("edge_detect");
  const platform::Platform pf = platform::platformA();

  std::printf("== 1. Frontend: parse + profile + HTG extraction\n");
  htg::FrontendBundle bundle = htg::buildFromSource(bench.source);
  std::printf("  checksum %lld, %.0f abstract ops, HTG %zu nodes\n",
              bundle.profile.exitValue, bundle.profile.totalOps, bundle.graph.size());
  writeFile("edge_detect.htg.dot", htg::toDot(bundle.graph));

  std::printf("== 2. ILP-based parallelization for platform %s\n", pf.summary().c_str());
  const cost::TimingModel timing(pf);
  parallel::Parallelizer tool(bundle.graph, timing);
  parallel::ParallelizeOutcome outcome = tool.run();
  std::printf("  %s\n", outcome.stats.summary().c_str());

  const platform::ClassId mainClass = pf.slowestClass();
  const parallel::SolutionRef best = outcome.bestRoot(bundle.graph, mainClass);

  std::printf("== 3. Source-to-source outputs\n");
  writeFile("edge_detect.annotated.c",
            codegen::annotateSource(bundle.program, bundle.graph, outcome.table, best, pf));
  writeFile("edge_detect.parspec", codegen::mpaSpec(bundle.graph, outcome.table, best));
  writeFile("edge_detect.premap",
            codegen::premapSpec(bundle.graph, outcome.table, best, pf));

  std::printf("== 4. Implementation + MPSoC simulation\n");
  const int mainCore = pf.firstCoreOfClass(mainClass);
  const auto seqFlat = sched::flattenSequential(bundle.graph, timing, mainCore);
  const double seq = sim::simulate(seqFlat.graph).makespanSeconds;
  const auto parFlat = sched::flatten(bundle.graph, outcome.table, best, timing, mainCore);
  const sim::SimReport report = sim::simulate(parFlat.graph);
  std::printf("  task graph: %zu tasks on %d cores, %d bus transfers\n",
              parFlat.graph.tasks.size(), parFlat.graph.numCores, report.busTransfers);
  std::printf("  sequential on %s: %.3f ms\n", pf.classAt(mainClass).name.c_str(), seq * 1e3);
  std::printf("  parallel makespan: %.3f ms  -> speedup %.2fx (limit %.1fx)\n",
              report.makespanSeconds * 1e3, seq / report.makespanSeconds,
              pf.theoreticalMaxSpeedup(mainClass));
  for (int c = 0; c < pf.numCores(); ++c)
    std::printf("  core %d (%s): %4.1f%% busy, %d tasks\n", c,
                pf.classAt(pf.classOfCore(c)).name.c_str(), 100.0 * report.utilization(c),
                report.cores[static_cast<std::size_t>(c)].tasksRun);
  return 0;
}
