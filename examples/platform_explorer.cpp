// Platform design-space exploration: how does the achievable speedup react
// to the big/little frequency ratio? Sweeps 2-big+2-little platforms with
// growing heterogeneity and parallelizes the same kernel for each — the kind
// of what-if study the tool flow enables before silicon exists.
#include <cstdio>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/pipeline/evaluate.hpp"

int main() {
  using namespace hetpar;
  const auto& bench = benchsuite::find("mult_10");

  std::printf("Design-space exploration: %s on 2 little + 2 big cores\n", bench.name.c_str());
  std::printf("(big fixed at 500 MHz; little frequency swept)\n\n");
  std::printf("%-14s %10s %12s %12s %12s\n", "little (MHz)", "limit", "het speedup",
              "hom speedup", "het/hom");

  for (double littleMHz : {500.0, 250.0, 125.0, 62.5}) {
    const platform::Platform pf =
        platform::custom("sweep", {{littleMHz, 2}, {500.0, 2}});
    std::fprintf(stderr, "[explorer] little=%.1f MHz ...\n", littleMHz);
    const pipeline::EvalResult r = pipeline::evaluateBenchmark(
        bench.name, bench.source, pf, pipeline::Scenario::SlowerCores);
    std::printf("%-14.1f %9.2fx %11.2fx %11.2fx %11.2f\n", littleMHz, r.theoreticalLimit,
                r.heterogeneousSpeedup, r.homogeneousSpeedup,
                r.heterogeneousSpeedup / r.homogeneousSpeedup);
  }

  std::printf("\nReading: with identical cores both tools tie; as the little\n"
              "cores slow down, the heterogeneity-oblivious baseline collapses\n"
              "(its uniform split waits for the little cores) while the\n"
              "ILP-based heterogeneous tool keeps tracking the platform limit.\n");
  return 0;
}
