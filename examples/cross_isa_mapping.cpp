// Cross-ISA mapping demo: a platform whose classes differ in WHAT they are
// fast at rather than how fast they clock. Two general-purpose cores and two
// DSP-like cores (4x faster float units, 2x slower control flow) run at the
// same 300 MHz; the ILP's per-statement, per-class execution costs route the
// float-heavy filter to the DSPs and keep the branchy integer quantizer on
// the GPPs. Finishes with an energy report (the paper's future-work
// objective).
#include <cstdio>

#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/energy.hpp"
#include "hetpar/sim/mpsoc.hpp"

int main() {
  using namespace hetpar;

  const char* source = R"(
    double wave[8192];
    double filtered[8192];
    int levels[8192];
    int main() {
      for (int i = 0; i < 8192; i = i + 1) { wave[i] = sin(0.01 * i) * 100.0; }
      for (int i = 0; i < 8192; i = i + 1) {
        filtered[i] = sqrt(wave[i] * wave[i] + 1.0) * 0.7 + cos(0.002 * i);
      }
      for (int i = 0; i < 8192; i = i + 1) {
        int v = filtered[i];
        if (v > 64) { v = 64; }
        if (v < -64) { v = -64; }
        levels[i] = v + 64;
      }
      int s = 0;
      for (int i = 0; i < 8192; i = i + 1) { s = s + levels[i]; }
      return s;
    }
  )";

  const platform::Platform pf = platform::crossIsaDemo();
  std::printf("platform %s\n", pf.summary().c_str());
  std::printf("  gpp: baseline ISA; dsp: float 4x faster, control 2x slower\n\n");

  htg::FrontendBundle bundle = htg::buildFromSource(source);
  const cost::TimingModel timing(pf);
  parallel::Parallelizer tool(bundle.graph, timing);
  parallel::ParallelizeOutcome outcome = tool.run();

  // Show where each loop's iterations land.
  const platform::ClassId gpp = pf.findClass("gpp");
  const platform::ClassId dsp = pf.findClass("dsp");
  bundle.graph.forEach([&](const htg::Node& n) {
    if (n.kind != htg::NodeKind::Loop || n.stmt == nullptr) return;
    const parallel::ParallelSet& set = outcome.table.at(n.id);
    const int best = set.bestFor(gpp);
    const parallel::SolutionCandidate& cand = set.at(best);
    if (cand.kind != parallel::SolutionKind::LoopChunked) return;
    double onDsp = 0.0;
    double total = 0.0;
    for (int t = 0; t < cand.numTasks(); ++t) {
      total += cand.chunkIterations[static_cast<std::size_t>(t)];
      if (cand.taskClass[static_cast<std::size_t>(t)] == dsp)
        onDsp += cand.chunkIterations[static_cast<std::size_t>(t)];
    }
    const cost::OpMix mix = bundle.graph.subtreeMixPerExec(n.id);
    std::printf("loop at line %-3d  float%%=%4.1f  -> %4.1f%% of iterations on the DSPs\n",
                n.stmt->loc.line, 100.0 * mix.of(cost::OpKind::FloatAlu) / mix.total(),
                total > 0 ? 100.0 * onDsp / total : 0.0);
  });

  // Simulate and report time + energy.
  const int mainCore = pf.firstCoreOfClass(gpp);
  const auto seq = sched::flattenSequential(bundle.graph, timing, mainCore);
  const sim::SimReport seqRep = sim::simulate(seq.graph);
  const auto par = sched::flatten(bundle.graph, outcome.table,
                                  outcome.bestRoot(bundle.graph, gpp), timing, mainCore);
  const sim::SimReport parRep = sim::simulate(par.graph);
  const sim::EnergyReport seqEnergy = sim::energyOf(seqRep, seq.graph, pf);
  const sim::EnergyReport parEnergy = sim::energyOf(parRep, par.graph, pf);

  std::printf("\nsequential on gpp: %7.3f ms, %7.3f mJ (whole chip powered)\n",
              seqRep.makespanSeconds * 1e3, seqEnergy.totalJoules * 1e3);
  std::printf("parallelized     : %7.3f ms, %7.3f mJ  -> %.2fx faster, %.2fx the EDP\n",
              parRep.makespanSeconds * 1e3, parEnergy.totalJoules * 1e3,
              seqRep.makespanSeconds / parRep.makespanSeconds,
              parEnergy.edp(parRep.makespanSeconds) / seqEnergy.edp(seqRep.makespanSeconds));
  return 0;
}
