// Quickstart: parallelize a tiny program for a heterogeneous platform and
// inspect what the tool decided.
//
//   $ ./quickstart
//
// Walks the whole public API surface in ~80 lines: parse + profile + HTG
// (htg::buildFromSource), platform description (platform::platformA), the
// ILP-based parallelizer (parallel::Parallelizer), solution inspection, and
// the annotated-source output (codegen::annotateSource).
#include <cstdio>

#include "hetpar/codegen/annotate.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"

int main() {
  using namespace hetpar;

  // A small image-pipeline-shaped program: two independent producer loops
  // feeding a combining loop.
  const char* source = R"(
    int bright[4096];
    int blur[4096];
    int outp[4096];
    int main() {
      for (int i = 0; i < 4096; i = i + 1) { bright[i] = (i * 7) % 256 + 10; }
      for (int i = 0; i < 4096; i = i + 1) { blur[i] = (i * 3) % 256 / 2; }
      for (int i = 0; i < 4096; i = i + 1) { outp[i] = bright[i] + blur[i]; }
      int s = 0;
      for (int i = 0; i < 4096; i = i + 1) { s = s + outp[i]; }
      return s;
    }
  )";

  // 1. Front end: parse, run sema, profile by interpretation, build the
  //    Augmented Hierarchical Task Graph.
  htg::FrontendBundle bundle = htg::buildFromSource(source);
  std::printf("program checksum (interpreted): %lld\n", bundle.profile.exitValue);
  std::printf("HTG: %zu nodes, %d hierarchical regions\n\n", bundle.graph.size(),
              bundle.graph.hierarchicalCount());

  // 2. Target platform: the paper's configuration (A).
  const platform::Platform pf = platform::platformA();
  std::printf("platform %s\n", pf.summary().c_str());

  // 3. Parallelize (Algorithm 1 + the Eq 1-18 ILPs).
  const cost::TimingModel timing(pf);
  parallel::Parallelizer tool(bundle.graph, timing);
  parallel::ParallelizeOutcome outcome = tool.run();
  std::printf("solver work: %s\n\n", outcome.stats.summary().c_str());

  // 4. Inspect the best solution when the main task runs on the slow core.
  const platform::ClassId mainClass = pf.slowestClass();
  const auto& rootSet = outcome.table.at(bundle.graph.root());
  const int seq = rootSet.sequentialFor(mainClass);
  const int best = rootSet.bestFor(mainClass);
  const double seqMs = rootSet.at(seq).timeSeconds * 1e3;
  const double parMs = rootSet.at(best).timeSeconds * 1e3;
  std::printf("sequential on %s : %.3f ms\n", pf.classAt(mainClass).name.c_str(), seqMs);
  std::printf("parallelized      : %.3f ms  (%.2fx speedup, limit %.1fx)\n\n", parMs,
              seqMs / parMs, pf.theoreticalMaxSpeedup(mainClass));

  // 5. Show the annotated source (the tool's primary output artifact).
  std::printf("---- annotated source ----\n%s",
              codegen::annotateSource(bundle.program, bundle.graph, outcome.table,
                                      {bundle.graph.root(), best}, pf)
                  .c_str());
  return 0;
}
