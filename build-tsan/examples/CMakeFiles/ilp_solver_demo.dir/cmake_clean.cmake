file(REMOVE_RECURSE
  "CMakeFiles/ilp_solver_demo.dir/ilp_solver_demo.cpp.o"
  "CMakeFiles/ilp_solver_demo.dir/ilp_solver_demo.cpp.o.d"
  "ilp_solver_demo"
  "ilp_solver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_solver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
