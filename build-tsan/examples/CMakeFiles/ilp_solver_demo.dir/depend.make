# Empty dependencies file for ilp_solver_demo.
# This may be replaced when dependencies are built.
