# Empty dependencies file for toolflow_demo.
# This may be replaced when dependencies are built.
