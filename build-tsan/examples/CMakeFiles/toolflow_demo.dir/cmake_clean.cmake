file(REMOVE_RECURSE
  "CMakeFiles/toolflow_demo.dir/toolflow_demo.cpp.o"
  "CMakeFiles/toolflow_demo.dir/toolflow_demo.cpp.o.d"
  "toolflow_demo"
  "toolflow_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolflow_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
