file(REMOVE_RECURSE
  "CMakeFiles/cross_isa_mapping.dir/cross_isa_mapping.cpp.o"
  "CMakeFiles/cross_isa_mapping.dir/cross_isa_mapping.cpp.o.d"
  "cross_isa_mapping"
  "cross_isa_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_isa_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
