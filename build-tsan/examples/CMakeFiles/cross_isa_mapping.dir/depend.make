# Empty dependencies file for cross_isa_mapping.
# This may be replaced when dependencies are built.
