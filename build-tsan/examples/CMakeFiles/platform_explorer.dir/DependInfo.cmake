
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/platform_explorer.cpp" "examples/CMakeFiles/platform_explorer.dir/platform_explorer.cpp.o" "gcc" "examples/CMakeFiles/platform_explorer.dir/platform_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_codegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_sched.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_ilp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_htg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_cost.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_platform.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_ir.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_benchsuite.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
