# Empty dependencies file for sim_measure_test.
# This may be replaced when dependencies are built.
