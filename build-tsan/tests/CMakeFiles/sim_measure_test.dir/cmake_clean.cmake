file(REMOVE_RECURSE
  "CMakeFiles/sim_measure_test.dir/sim/measure_test.cpp.o"
  "CMakeFiles/sim_measure_test.dir/sim/measure_test.cpp.o.d"
  "sim_measure_test"
  "sim_measure_test.pdb"
  "sim_measure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_measure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
