file(REMOVE_RECURSE
  "CMakeFiles/parallel_greedy_test.dir/parallel/greedy_test.cpp.o"
  "CMakeFiles/parallel_greedy_test.dir/parallel/greedy_test.cpp.o.d"
  "parallel_greedy_test"
  "parallel_greedy_test.pdb"
  "parallel_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
