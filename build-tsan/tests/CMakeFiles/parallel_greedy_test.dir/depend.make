# Empty dependencies file for parallel_greedy_test.
# This may be replaced when dependencies are built.
