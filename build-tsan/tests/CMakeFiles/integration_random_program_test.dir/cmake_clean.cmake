file(REMOVE_RECURSE
  "CMakeFiles/integration_random_program_test.dir/integration/random_program_test.cpp.o"
  "CMakeFiles/integration_random_program_test.dir/integration/random_program_test.cpp.o.d"
  "integration_random_program_test"
  "integration_random_program_test.pdb"
  "integration_random_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_random_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
