# Empty dependencies file for integration_random_program_test.
# This may be replaced when dependencies are built.
