# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_random_program_test.
