file(REMOVE_RECURSE
  "CMakeFiles/sim_mpsoc_test.dir/sim/mpsoc_test.cpp.o"
  "CMakeFiles/sim_mpsoc_test.dir/sim/mpsoc_test.cpp.o.d"
  "sim_mpsoc_test"
  "sim_mpsoc_test.pdb"
  "sim_mpsoc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_mpsoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
