# Empty dependencies file for sim_mpsoc_test.
# This may be replaced when dependencies are built.
