# Empty dependencies file for ir_dependence_test.
# This may be replaced when dependencies are built.
