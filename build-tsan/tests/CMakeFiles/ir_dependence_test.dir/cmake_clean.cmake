file(REMOVE_RECURSE
  "CMakeFiles/ir_dependence_test.dir/ir/dependence_test.cpp.o"
  "CMakeFiles/ir_dependence_test.dir/ir/dependence_test.cpp.o.d"
  "ir_dependence_test"
  "ir_dependence_test.pdb"
  "ir_dependence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_dependence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
