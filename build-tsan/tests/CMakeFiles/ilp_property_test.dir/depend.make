# Empty dependencies file for ilp_property_test.
# This may be replaced when dependencies are built.
