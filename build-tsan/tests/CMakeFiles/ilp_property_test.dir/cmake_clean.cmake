file(REMOVE_RECURSE
  "CMakeFiles/ilp_property_test.dir/ilp/property_test.cpp.o"
  "CMakeFiles/ilp_property_test.dir/ilp/property_test.cpp.o.d"
  "ilp_property_test"
  "ilp_property_test.pdb"
  "ilp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
