# Empty dependencies file for parallel_chunkilp_test.
# This may be replaced when dependencies are built.
