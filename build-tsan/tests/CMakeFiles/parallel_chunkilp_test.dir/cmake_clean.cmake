file(REMOVE_RECURSE
  "CMakeFiles/parallel_chunkilp_test.dir/parallel/chunkilp_test.cpp.o"
  "CMakeFiles/parallel_chunkilp_test.dir/parallel/chunkilp_test.cpp.o.d"
  "parallel_chunkilp_test"
  "parallel_chunkilp_test.pdb"
  "parallel_chunkilp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_chunkilp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
