file(REMOVE_RECURSE
  "CMakeFiles/ir_looppar_test.dir/ir/looppar_test.cpp.o"
  "CMakeFiles/ir_looppar_test.dir/ir/looppar_test.cpp.o.d"
  "ir_looppar_test"
  "ir_looppar_test.pdb"
  "ir_looppar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_looppar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
