# Empty dependencies file for ir_looppar_test.
# This may be replaced when dependencies are built.
