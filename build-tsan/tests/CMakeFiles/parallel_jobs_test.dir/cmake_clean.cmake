file(REMOVE_RECURSE
  "CMakeFiles/parallel_jobs_test.dir/parallel/parallelizer_jobs_test.cpp.o"
  "CMakeFiles/parallel_jobs_test.dir/parallel/parallelizer_jobs_test.cpp.o.d"
  "parallel_jobs_test"
  "parallel_jobs_test.pdb"
  "parallel_jobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_jobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
