# Empty dependencies file for parallel_jobs_test.
# This may be replaced when dependencies are built.
