file(REMOVE_RECURSE
  "CMakeFiles/frontend_lexer_test.dir/frontend/lexer_test.cpp.o"
  "CMakeFiles/frontend_lexer_test.dir/frontend/lexer_test.cpp.o.d"
  "frontend_lexer_test"
  "frontend_lexer_test.pdb"
  "frontend_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
