# Empty dependencies file for frontend_lexer_test.
# This may be replaced when dependencies are built.
