file(REMOVE_RECURSE
  "CMakeFiles/frontend_sema_test.dir/frontend/sema_test.cpp.o"
  "CMakeFiles/frontend_sema_test.dir/frontend/sema_test.cpp.o.d"
  "frontend_sema_test"
  "frontend_sema_test.pdb"
  "frontend_sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
