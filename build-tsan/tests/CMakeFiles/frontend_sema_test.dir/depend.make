# Empty dependencies file for frontend_sema_test.
# This may be replaced when dependencies are built.
