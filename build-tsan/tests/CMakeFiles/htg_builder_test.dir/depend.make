# Empty dependencies file for htg_builder_test.
# This may be replaced when dependencies are built.
