file(REMOVE_RECURSE
  "CMakeFiles/htg_builder_test.dir/htg/builder_test.cpp.o"
  "CMakeFiles/htg_builder_test.dir/htg/builder_test.cpp.o.d"
  "htg_builder_test"
  "htg_builder_test.pdb"
  "htg_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
