# Empty dependencies file for integration_cross_isa_test.
# This may be replaced when dependencies are built.
