file(REMOVE_RECURSE
  "CMakeFiles/integration_cross_isa_test.dir/integration/cross_isa_test.cpp.o"
  "CMakeFiles/integration_cross_isa_test.dir/integration/cross_isa_test.cpp.o.d"
  "integration_cross_isa_test"
  "integration_cross_isa_test.pdb"
  "integration_cross_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_cross_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
