file(REMOVE_RECURSE
  "CMakeFiles/ilp_model_test.dir/ilp/model_test.cpp.o"
  "CMakeFiles/ilp_model_test.dir/ilp/model_test.cpp.o.d"
  "ilp_model_test"
  "ilp_model_test.pdb"
  "ilp_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
