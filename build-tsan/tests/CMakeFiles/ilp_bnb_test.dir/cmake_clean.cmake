file(REMOVE_RECURSE
  "CMakeFiles/ilp_bnb_test.dir/ilp/bnb_test.cpp.o"
  "CMakeFiles/ilp_bnb_test.dir/ilp/bnb_test.cpp.o.d"
  "ilp_bnb_test"
  "ilp_bnb_test.pdb"
  "ilp_bnb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_bnb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
