# Empty dependencies file for ilp_bnb_test.
# This may be replaced when dependencies are built.
