file(REMOVE_RECURSE
  "CMakeFiles/frontend_printer_test.dir/frontend/printer_test.cpp.o"
  "CMakeFiles/frontend_printer_test.dir/frontend/printer_test.cpp.o.d"
  "frontend_printer_test"
  "frontend_printer_test.pdb"
  "frontend_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
