# Empty dependencies file for frontend_printer_test.
# This may be replaced when dependencies are built.
