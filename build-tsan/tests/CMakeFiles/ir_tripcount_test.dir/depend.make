# Empty dependencies file for ir_tripcount_test.
# This may be replaced when dependencies are built.
