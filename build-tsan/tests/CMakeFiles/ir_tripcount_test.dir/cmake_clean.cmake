file(REMOVE_RECURSE
  "CMakeFiles/ir_tripcount_test.dir/ir/tripcount_test.cpp.o"
  "CMakeFiles/ir_tripcount_test.dir/ir/tripcount_test.cpp.o.d"
  "ir_tripcount_test"
  "ir_tripcount_test.pdb"
  "ir_tripcount_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tripcount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
