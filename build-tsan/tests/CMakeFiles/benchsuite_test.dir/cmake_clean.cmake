file(REMOVE_RECURSE
  "CMakeFiles/benchsuite_test.dir/benchsuite/suite_test.cpp.o"
  "CMakeFiles/benchsuite_test.dir/benchsuite/suite_test.cpp.o.d"
  "benchsuite_test"
  "benchsuite_test.pdb"
  "benchsuite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchsuite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
