# Empty dependencies file for ilp_simplex_test.
# This may be replaced when dependencies are built.
