file(REMOVE_RECURSE
  "CMakeFiles/ilp_simplex_test.dir/ilp/simplex_test.cpp.o"
  "CMakeFiles/ilp_simplex_test.dir/ilp/simplex_test.cpp.o.d"
  "ilp_simplex_test"
  "ilp_simplex_test.pdb"
  "ilp_simplex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_simplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
