# Empty dependencies file for cost_timing_test.
# This may be replaced when dependencies are built.
