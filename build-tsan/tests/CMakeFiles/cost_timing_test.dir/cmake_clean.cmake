file(REMOVE_RECURSE
  "CMakeFiles/cost_timing_test.dir/cost/timing_test.cpp.o"
  "CMakeFiles/cost_timing_test.dir/cost/timing_test.cpp.o.d"
  "cost_timing_test"
  "cost_timing_test.pdb"
  "cost_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
