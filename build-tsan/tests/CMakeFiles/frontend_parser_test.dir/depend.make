# Empty dependencies file for frontend_parser_test.
# This may be replaced when dependencies are built.
