file(REMOVE_RECURSE
  "CMakeFiles/frontend_parser_test.dir/frontend/parser_test.cpp.o"
  "CMakeFiles/frontend_parser_test.dir/frontend/parser_test.cpp.o.d"
  "frontend_parser_test"
  "frontend_parser_test.pdb"
  "frontend_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
