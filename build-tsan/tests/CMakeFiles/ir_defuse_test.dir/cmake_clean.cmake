file(REMOVE_RECURSE
  "CMakeFiles/ir_defuse_test.dir/ir/defuse_test.cpp.o"
  "CMakeFiles/ir_defuse_test.dir/ir/defuse_test.cpp.o.d"
  "ir_defuse_test"
  "ir_defuse_test.pdb"
  "ir_defuse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_defuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
