# Empty dependencies file for ir_defuse_test.
# This may be replaced when dependencies are built.
