# Empty dependencies file for parallel_solution_test.
# This may be replaced when dependencies are built.
