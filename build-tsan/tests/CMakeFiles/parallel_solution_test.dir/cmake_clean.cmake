file(REMOVE_RECURSE
  "CMakeFiles/parallel_solution_test.dir/parallel/solution_test.cpp.o"
  "CMakeFiles/parallel_solution_test.dir/parallel/solution_test.cpp.o.d"
  "parallel_solution_test"
  "parallel_solution_test.pdb"
  "parallel_solution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_solution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
