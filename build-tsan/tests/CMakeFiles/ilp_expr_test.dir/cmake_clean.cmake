file(REMOVE_RECURSE
  "CMakeFiles/ilp_expr_test.dir/ilp/expr_test.cpp.o"
  "CMakeFiles/ilp_expr_test.dir/ilp/expr_test.cpp.o.d"
  "ilp_expr_test"
  "ilp_expr_test.pdb"
  "ilp_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
