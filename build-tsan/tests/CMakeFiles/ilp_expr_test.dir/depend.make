# Empty dependencies file for ilp_expr_test.
# This may be replaced when dependencies are built.
