# Empty dependencies file for parallel_parallelizer_test.
# This may be replaced when dependencies are built.
