file(REMOVE_RECURSE
  "CMakeFiles/parallel_parallelizer_test.dir/parallel/parallelizer_test.cpp.o"
  "CMakeFiles/parallel_parallelizer_test.dir/parallel/parallelizer_test.cpp.o.d"
  "parallel_parallelizer_test"
  "parallel_parallelizer_test.pdb"
  "parallel_parallelizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_parallelizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
