# Empty dependencies file for htg_validate_test.
# This may be replaced when dependencies are built.
