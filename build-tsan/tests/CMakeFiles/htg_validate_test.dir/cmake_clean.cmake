file(REMOVE_RECURSE
  "CMakeFiles/htg_validate_test.dir/htg/validate_test.cpp.o"
  "CMakeFiles/htg_validate_test.dir/htg/validate_test.cpp.o.d"
  "htg_validate_test"
  "htg_validate_test.pdb"
  "htg_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
