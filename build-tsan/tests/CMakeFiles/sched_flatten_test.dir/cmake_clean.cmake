file(REMOVE_RECURSE
  "CMakeFiles/sched_flatten_test.dir/sched/flatten_test.cpp.o"
  "CMakeFiles/sched_flatten_test.dir/sched/flatten_test.cpp.o.d"
  "sched_flatten_test"
  "sched_flatten_test.pdb"
  "sched_flatten_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
