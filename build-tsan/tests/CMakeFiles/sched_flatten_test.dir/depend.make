# Empty dependencies file for sched_flatten_test.
# This may be replaced when dependencies are built.
