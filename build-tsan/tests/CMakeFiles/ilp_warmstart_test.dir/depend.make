# Empty dependencies file for ilp_warmstart_test.
# This may be replaced when dependencies are built.
