file(REMOVE_RECURSE
  "CMakeFiles/ilp_warmstart_test.dir/ilp/warmstart_test.cpp.o"
  "CMakeFiles/ilp_warmstart_test.dir/ilp/warmstart_test.cpp.o.d"
  "ilp_warmstart_test"
  "ilp_warmstart_test.pdb"
  "ilp_warmstart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_warmstart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
