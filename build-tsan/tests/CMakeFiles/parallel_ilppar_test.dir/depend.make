# Empty dependencies file for parallel_ilppar_test.
# This may be replaced when dependencies are built.
