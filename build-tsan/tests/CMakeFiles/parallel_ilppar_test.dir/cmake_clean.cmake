file(REMOVE_RECURSE
  "CMakeFiles/parallel_ilppar_test.dir/parallel/ilppar_test.cpp.o"
  "CMakeFiles/parallel_ilppar_test.dir/parallel/ilppar_test.cpp.o.d"
  "parallel_ilppar_test"
  "parallel_ilppar_test.pdb"
  "parallel_ilppar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_ilppar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
