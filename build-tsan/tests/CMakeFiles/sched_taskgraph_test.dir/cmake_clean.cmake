file(REMOVE_RECURSE
  "CMakeFiles/sched_taskgraph_test.dir/sched/taskgraph_test.cpp.o"
  "CMakeFiles/sched_taskgraph_test.dir/sched/taskgraph_test.cpp.o.d"
  "sched_taskgraph_test"
  "sched_taskgraph_test.pdb"
  "sched_taskgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_taskgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
