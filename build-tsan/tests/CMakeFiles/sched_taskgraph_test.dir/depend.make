# Empty dependencies file for sched_taskgraph_test.
# This may be replaced when dependencies are built.
