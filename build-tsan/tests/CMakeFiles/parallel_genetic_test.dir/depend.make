# Empty dependencies file for parallel_genetic_test.
# This may be replaced when dependencies are built.
