file(REMOVE_RECURSE
  "CMakeFiles/parallel_genetic_test.dir/parallel/genetic_test.cpp.o"
  "CMakeFiles/parallel_genetic_test.dir/parallel/genetic_test.cpp.o.d"
  "parallel_genetic_test"
  "parallel_genetic_test.pdb"
  "parallel_genetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_genetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
