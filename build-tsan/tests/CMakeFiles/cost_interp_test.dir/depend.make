# Empty dependencies file for cost_interp_test.
# This may be replaced when dependencies are built.
