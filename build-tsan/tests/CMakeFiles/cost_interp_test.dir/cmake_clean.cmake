file(REMOVE_RECURSE
  "CMakeFiles/cost_interp_test.dir/cost/interp_test.cpp.o"
  "CMakeFiles/cost_interp_test.dir/cost/interp_test.cpp.o.d"
  "cost_interp_test"
  "cost_interp_test.pdb"
  "cost_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
