# Empty dependencies file for table1_ilp_stats.
# This may be replaced when dependencies are built.
