file(REMOVE_RECURSE
  "CMakeFiles/speedup_jobs.dir/speedup_jobs.cpp.o"
  "CMakeFiles/speedup_jobs.dir/speedup_jobs.cpp.o.d"
  "speedup_jobs"
  "speedup_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
