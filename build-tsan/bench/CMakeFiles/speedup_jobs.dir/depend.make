# Empty dependencies file for speedup_jobs.
# This may be replaced when dependencies are built.
