# Empty dependencies file for fig7_platform_a.
# This may be replaced when dependencies are built.
