file(REMOVE_RECURSE
  "CMakeFiles/fig7_platform_a.dir/fig7_platform_a.cpp.o"
  "CMakeFiles/fig7_platform_a.dir/fig7_platform_a.cpp.o.d"
  "fig7_platform_a"
  "fig7_platform_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_platform_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
