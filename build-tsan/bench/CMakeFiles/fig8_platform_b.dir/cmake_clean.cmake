file(REMOVE_RECURSE
  "CMakeFiles/fig8_platform_b.dir/fig8_platform_b.cpp.o"
  "CMakeFiles/fig8_platform_b.dir/fig8_platform_b.cpp.o.d"
  "fig8_platform_b"
  "fig8_platform_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_platform_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
