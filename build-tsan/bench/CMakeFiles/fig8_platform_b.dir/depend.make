# Empty dependencies file for fig8_platform_b.
# This may be replaced when dependencies are built.
