file(REMOVE_RECURSE
  "libhetpar_platform.a"
)
