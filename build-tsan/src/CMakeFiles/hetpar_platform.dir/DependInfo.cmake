
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/platform/parser.cpp" "src/CMakeFiles/hetpar_platform.dir/hetpar/platform/parser.cpp.o" "gcc" "src/CMakeFiles/hetpar_platform.dir/hetpar/platform/parser.cpp.o.d"
  "/root/repo/src/hetpar/platform/platform.cpp" "src/CMakeFiles/hetpar_platform.dir/hetpar/platform/platform.cpp.o" "gcc" "src/CMakeFiles/hetpar_platform.dir/hetpar/platform/platform.cpp.o.d"
  "/root/repo/src/hetpar/platform/presets.cpp" "src/CMakeFiles/hetpar_platform.dir/hetpar/platform/presets.cpp.o" "gcc" "src/CMakeFiles/hetpar_platform.dir/hetpar/platform/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
