file(REMOVE_RECURSE
  "CMakeFiles/hetpar_platform.dir/hetpar/platform/parser.cpp.o"
  "CMakeFiles/hetpar_platform.dir/hetpar/platform/parser.cpp.o.d"
  "CMakeFiles/hetpar_platform.dir/hetpar/platform/platform.cpp.o"
  "CMakeFiles/hetpar_platform.dir/hetpar/platform/platform.cpp.o.d"
  "CMakeFiles/hetpar_platform.dir/hetpar/platform/presets.cpp.o"
  "CMakeFiles/hetpar_platform.dir/hetpar/platform/presets.cpp.o.d"
  "libhetpar_platform.a"
  "libhetpar_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
