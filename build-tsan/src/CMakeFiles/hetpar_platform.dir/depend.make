# Empty dependencies file for hetpar_platform.
# This may be replaced when dependencies are built.
