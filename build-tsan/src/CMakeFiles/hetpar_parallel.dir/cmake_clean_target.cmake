file(REMOVE_RECURSE
  "libhetpar_parallel.a"
)
