# Empty dependencies file for hetpar_parallel.
# This may be replaced when dependencies are built.
