
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/parallel/genetic.cpp" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/genetic.cpp.o" "gcc" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/genetic.cpp.o.d"
  "/root/repo/src/hetpar/parallel/homogeneous.cpp" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/homogeneous.cpp.o" "gcc" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/homogeneous.cpp.o.d"
  "/root/repo/src/hetpar/parallel/ilppar_model.cpp" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/ilppar_model.cpp.o" "gcc" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/ilppar_model.cpp.o.d"
  "/root/repo/src/hetpar/parallel/parallelizer.cpp" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/parallelizer.cpp.o" "gcc" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/parallelizer.cpp.o.d"
  "/root/repo/src/hetpar/parallel/region_cache.cpp" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/region_cache.cpp.o" "gcc" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/region_cache.cpp.o.d"
  "/root/repo/src/hetpar/parallel/solution.cpp" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/solution.cpp.o" "gcc" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/solution.cpp.o.d"
  "/root/repo/src/hetpar/parallel/stats.cpp" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/stats.cpp.o" "gcc" "src/CMakeFiles/hetpar_parallel.dir/hetpar/parallel/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_htg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_ilp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_cost.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_ir.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_platform.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
