file(REMOVE_RECURSE
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/genetic.cpp.o"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/genetic.cpp.o.d"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/homogeneous.cpp.o"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/homogeneous.cpp.o.d"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/ilppar_model.cpp.o"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/ilppar_model.cpp.o.d"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/parallelizer.cpp.o"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/parallelizer.cpp.o.d"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/region_cache.cpp.o"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/region_cache.cpp.o.d"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/solution.cpp.o"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/solution.cpp.o.d"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/stats.cpp.o"
  "CMakeFiles/hetpar_parallel.dir/hetpar/parallel/stats.cpp.o.d"
  "libhetpar_parallel.a"
  "libhetpar_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
