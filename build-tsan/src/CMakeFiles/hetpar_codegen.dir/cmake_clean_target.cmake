file(REMOVE_RECURSE
  "libhetpar_codegen.a"
)
