file(REMOVE_RECURSE
  "CMakeFiles/hetpar_codegen.dir/hetpar/codegen/annotate.cpp.o"
  "CMakeFiles/hetpar_codegen.dir/hetpar/codegen/annotate.cpp.o.d"
  "CMakeFiles/hetpar_codegen.dir/hetpar/codegen/mpa_spec.cpp.o"
  "CMakeFiles/hetpar_codegen.dir/hetpar/codegen/mpa_spec.cpp.o.d"
  "CMakeFiles/hetpar_codegen.dir/hetpar/codegen/premap_spec.cpp.o"
  "CMakeFiles/hetpar_codegen.dir/hetpar/codegen/premap_spec.cpp.o.d"
  "libhetpar_codegen.a"
  "libhetpar_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
