# Empty dependencies file for hetpar_codegen.
# This may be replaced when dependencies are built.
