# Empty dependencies file for hetpar_sched.
# This may be replaced when dependencies are built.
