file(REMOVE_RECURSE
  "libhetpar_sched.a"
)
