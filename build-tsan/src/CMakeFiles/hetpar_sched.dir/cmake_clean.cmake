file(REMOVE_RECURSE
  "CMakeFiles/hetpar_sched.dir/hetpar/sched/flatten.cpp.o"
  "CMakeFiles/hetpar_sched.dir/hetpar/sched/flatten.cpp.o.d"
  "CMakeFiles/hetpar_sched.dir/hetpar/sched/taskgraph.cpp.o"
  "CMakeFiles/hetpar_sched.dir/hetpar/sched/taskgraph.cpp.o.d"
  "libhetpar_sched.a"
  "libhetpar_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
