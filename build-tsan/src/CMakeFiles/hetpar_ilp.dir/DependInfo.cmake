
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/ilp/branch_and_bound.cpp" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/branch_and_bound.cpp.o.d"
  "/root/repo/src/hetpar/ilp/expr.cpp" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/expr.cpp.o" "gcc" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/expr.cpp.o.d"
  "/root/repo/src/hetpar/ilp/model.cpp" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/model.cpp.o" "gcc" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/model.cpp.o.d"
  "/root/repo/src/hetpar/ilp/simplex.cpp" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/simplex.cpp.o" "gcc" "src/CMakeFiles/hetpar_ilp.dir/hetpar/ilp/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
