file(REMOVE_RECURSE
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/branch_and_bound.cpp.o"
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/branch_and_bound.cpp.o.d"
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/expr.cpp.o"
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/expr.cpp.o.d"
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/model.cpp.o"
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/model.cpp.o.d"
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/simplex.cpp.o"
  "CMakeFiles/hetpar_ilp.dir/hetpar/ilp/simplex.cpp.o.d"
  "libhetpar_ilp.a"
  "libhetpar_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
