file(REMOVE_RECURSE
  "libhetpar_ilp.a"
)
