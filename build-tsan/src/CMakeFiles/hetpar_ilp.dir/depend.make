# Empty dependencies file for hetpar_ilp.
# This may be replaced when dependencies are built.
