file(REMOVE_RECURSE
  "libhetpar_htg.a"
)
