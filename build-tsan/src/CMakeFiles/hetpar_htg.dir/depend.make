# Empty dependencies file for hetpar_htg.
# This may be replaced when dependencies are built.
