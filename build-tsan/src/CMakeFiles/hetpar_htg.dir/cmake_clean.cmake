file(REMOVE_RECURSE
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/builder.cpp.o"
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/builder.cpp.o.d"
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/dot.cpp.o"
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/dot.cpp.o.d"
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/graph.cpp.o"
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/graph.cpp.o.d"
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/validate.cpp.o"
  "CMakeFiles/hetpar_htg.dir/hetpar/htg/validate.cpp.o.d"
  "libhetpar_htg.a"
  "libhetpar_htg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_htg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
