
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/htg/builder.cpp" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/builder.cpp.o" "gcc" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/builder.cpp.o.d"
  "/root/repo/src/hetpar/htg/dot.cpp" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/dot.cpp.o" "gcc" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/dot.cpp.o.d"
  "/root/repo/src/hetpar/htg/graph.cpp" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/graph.cpp.o" "gcc" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/graph.cpp.o.d"
  "/root/repo/src/hetpar/htg/validate.cpp" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/validate.cpp.o" "gcc" "src/CMakeFiles/hetpar_htg.dir/hetpar/htg/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_cost.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_ir.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_platform.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
