# Empty dependencies file for hetpar_support.
# This may be replaced when dependencies are built.
