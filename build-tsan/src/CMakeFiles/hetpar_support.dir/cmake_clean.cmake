file(REMOVE_RECURSE
  "CMakeFiles/hetpar_support.dir/hetpar/support/log.cpp.o"
  "CMakeFiles/hetpar_support.dir/hetpar/support/log.cpp.o.d"
  "CMakeFiles/hetpar_support.dir/hetpar/support/strings.cpp.o"
  "CMakeFiles/hetpar_support.dir/hetpar/support/strings.cpp.o.d"
  "CMakeFiles/hetpar_support.dir/hetpar/support/thread_pool.cpp.o"
  "CMakeFiles/hetpar_support.dir/hetpar/support/thread_pool.cpp.o.d"
  "libhetpar_support.a"
  "libhetpar_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
