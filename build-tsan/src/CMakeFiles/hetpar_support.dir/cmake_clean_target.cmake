file(REMOVE_RECURSE
  "libhetpar_support.a"
)
