
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/support/log.cpp" "src/CMakeFiles/hetpar_support.dir/hetpar/support/log.cpp.o" "gcc" "src/CMakeFiles/hetpar_support.dir/hetpar/support/log.cpp.o.d"
  "/root/repo/src/hetpar/support/strings.cpp" "src/CMakeFiles/hetpar_support.dir/hetpar/support/strings.cpp.o" "gcc" "src/CMakeFiles/hetpar_support.dir/hetpar/support/strings.cpp.o.d"
  "/root/repo/src/hetpar/support/thread_pool.cpp" "src/CMakeFiles/hetpar_support.dir/hetpar/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/hetpar_support.dir/hetpar/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
