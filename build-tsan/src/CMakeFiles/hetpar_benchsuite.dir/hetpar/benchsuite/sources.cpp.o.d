src/CMakeFiles/hetpar_benchsuite.dir/hetpar/benchsuite/sources.cpp.o: \
 /root/repo/src/hetpar/benchsuite/sources.cpp /usr/include/stdc-predef.h \
 /root/repo/src/hetpar/benchsuite/sources.hpp
