file(REMOVE_RECURSE
  "libhetpar_benchsuite.a"
)
