file(REMOVE_RECURSE
  "CMakeFiles/hetpar_benchsuite.dir/hetpar/benchsuite/sources.cpp.o"
  "CMakeFiles/hetpar_benchsuite.dir/hetpar/benchsuite/sources.cpp.o.d"
  "CMakeFiles/hetpar_benchsuite.dir/hetpar/benchsuite/suite.cpp.o"
  "CMakeFiles/hetpar_benchsuite.dir/hetpar/benchsuite/suite.cpp.o.d"
  "libhetpar_benchsuite.a"
  "libhetpar_benchsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_benchsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
