# Empty dependencies file for hetpar_benchsuite.
# This may be replaced when dependencies are built.
