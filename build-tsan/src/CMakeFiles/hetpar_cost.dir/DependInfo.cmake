
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/cost/interp.cpp" "src/CMakeFiles/hetpar_cost.dir/hetpar/cost/interp.cpp.o" "gcc" "src/CMakeFiles/hetpar_cost.dir/hetpar/cost/interp.cpp.o.d"
  "/root/repo/src/hetpar/cost/profile.cpp" "src/CMakeFiles/hetpar_cost.dir/hetpar/cost/profile.cpp.o" "gcc" "src/CMakeFiles/hetpar_cost.dir/hetpar/cost/profile.cpp.o.d"
  "/root/repo/src/hetpar/cost/timing.cpp" "src/CMakeFiles/hetpar_cost.dir/hetpar/cost/timing.cpp.o" "gcc" "src/CMakeFiles/hetpar_cost.dir/hetpar/cost/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_ir.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_platform.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
