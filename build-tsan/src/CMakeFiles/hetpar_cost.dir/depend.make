# Empty dependencies file for hetpar_cost.
# This may be replaced when dependencies are built.
