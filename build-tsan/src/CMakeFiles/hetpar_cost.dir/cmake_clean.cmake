file(REMOVE_RECURSE
  "CMakeFiles/hetpar_cost.dir/hetpar/cost/interp.cpp.o"
  "CMakeFiles/hetpar_cost.dir/hetpar/cost/interp.cpp.o.d"
  "CMakeFiles/hetpar_cost.dir/hetpar/cost/profile.cpp.o"
  "CMakeFiles/hetpar_cost.dir/hetpar/cost/profile.cpp.o.d"
  "CMakeFiles/hetpar_cost.dir/hetpar/cost/timing.cpp.o"
  "CMakeFiles/hetpar_cost.dir/hetpar/cost/timing.cpp.o.d"
  "libhetpar_cost.a"
  "libhetpar_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
