file(REMOVE_RECURSE
  "libhetpar_cost.a"
)
