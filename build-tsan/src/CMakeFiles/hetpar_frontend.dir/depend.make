# Empty dependencies file for hetpar_frontend.
# This may be replaced when dependencies are built.
