file(REMOVE_RECURSE
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/ast.cpp.o"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/ast.cpp.o.d"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/lexer.cpp.o"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/lexer.cpp.o.d"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/parser.cpp.o"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/parser.cpp.o.d"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/printer.cpp.o"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/printer.cpp.o.d"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/sema.cpp.o"
  "CMakeFiles/hetpar_frontend.dir/hetpar/frontend/sema.cpp.o.d"
  "libhetpar_frontend.a"
  "libhetpar_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
