
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/frontend/ast.cpp" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/ast.cpp.o" "gcc" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/ast.cpp.o.d"
  "/root/repo/src/hetpar/frontend/lexer.cpp" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/lexer.cpp.o.d"
  "/root/repo/src/hetpar/frontend/parser.cpp" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/parser.cpp.o.d"
  "/root/repo/src/hetpar/frontend/printer.cpp" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/printer.cpp.o" "gcc" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/printer.cpp.o.d"
  "/root/repo/src/hetpar/frontend/sema.cpp" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/sema.cpp.o" "gcc" "src/CMakeFiles/hetpar_frontend.dir/hetpar/frontend/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
