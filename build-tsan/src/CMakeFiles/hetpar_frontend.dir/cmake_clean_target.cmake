file(REMOVE_RECURSE
  "libhetpar_frontend.a"
)
