file(REMOVE_RECURSE
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/defuse.cpp.o"
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/defuse.cpp.o.d"
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/dependence.cpp.o"
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/dependence.cpp.o.d"
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/looppar.cpp.o"
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/looppar.cpp.o.d"
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/tripcount.cpp.o"
  "CMakeFiles/hetpar_ir.dir/hetpar/ir/tripcount.cpp.o.d"
  "libhetpar_ir.a"
  "libhetpar_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
