
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hetpar/ir/defuse.cpp" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/defuse.cpp.o" "gcc" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/defuse.cpp.o.d"
  "/root/repo/src/hetpar/ir/dependence.cpp" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/dependence.cpp.o" "gcc" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/dependence.cpp.o.d"
  "/root/repo/src/hetpar/ir/looppar.cpp" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/looppar.cpp.o" "gcc" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/looppar.cpp.o.d"
  "/root/repo/src/hetpar/ir/tripcount.cpp" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/tripcount.cpp.o" "gcc" "src/CMakeFiles/hetpar_ir.dir/hetpar/ir/tripcount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/hetpar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
