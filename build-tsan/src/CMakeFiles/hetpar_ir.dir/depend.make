# Empty dependencies file for hetpar_ir.
# This may be replaced when dependencies are built.
