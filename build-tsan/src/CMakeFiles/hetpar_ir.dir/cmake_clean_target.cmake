file(REMOVE_RECURSE
  "libhetpar_ir.a"
)
