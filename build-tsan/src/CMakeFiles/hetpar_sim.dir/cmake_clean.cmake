file(REMOVE_RECURSE
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/energy.cpp.o"
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/energy.cpp.o.d"
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/engine.cpp.o"
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/engine.cpp.o.d"
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/measure.cpp.o"
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/measure.cpp.o.d"
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/mpsoc.cpp.o"
  "CMakeFiles/hetpar_sim.dir/hetpar/sim/mpsoc.cpp.o.d"
  "libhetpar_sim.a"
  "libhetpar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetpar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
