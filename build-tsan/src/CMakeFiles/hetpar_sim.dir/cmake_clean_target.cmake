file(REMOVE_RECURSE
  "libhetpar_sim.a"
)
