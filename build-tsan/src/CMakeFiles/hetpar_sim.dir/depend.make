# Empty dependencies file for hetpar_sim.
# This may be replaced when dependencies are built.
