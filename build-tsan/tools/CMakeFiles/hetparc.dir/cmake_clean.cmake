file(REMOVE_RECURSE
  "CMakeFiles/hetparc.dir/hetparc.cpp.o"
  "CMakeFiles/hetparc.dir/hetparc.cpp.o.d"
  "hetparc"
  "hetparc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetparc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
