# Empty dependencies file for hetparc.
# This may be replaced when dependencies are built.
